// Hardware virtualization block (paper §4.1, Figure 4).
//
// "…it will support fine-grain sharing of those FPGA resources, where a
// function implemented in hardware can be 'called' by different tasks or
// threads of an HPC application in parallel, through the Virtualization
// block… a mechanism to execute multiple function calls (from different
// virtual machines) in a fully pipelined fashion."
//
// Two sharing disciplines are modelled so the claim can be quantified:
//  * kExclusive — a call locks the accelerator for its whole duration
//    (depth + n*II), like a mutex-guarded device.
//  * kPipelined — calls from different contexts interleave at item
//    granularity: the pipeline issue slot is the only serialised resource,
//    so caller B's items flow into the pipeline right behind caller A's.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/units.h"
#include "fabric/accelerator.h"
#include "sim/timeline.h"

namespace ecoscale {

enum class SharingMode { kExclusive, kPipelined };

struct HwCall {
  SimTime start = 0;    // when the first item issued
  SimTime finish = 0;   // when the last item left the pipeline
  Picojoules energy = 0.0;
};

class VirtualizationBlock {
 public:
  using ContextOrdinal = std::uint32_t;

  VirtualizationBlock(std::string name, const AcceleratorModule& module,
                      SharingMode mode)
      : name_(std::move(name)),
        module_(module),
        mode_(mode),
        issue_(name_ + ".issue") {}

  /// Invoke the shared hardware function with `items` work items on behalf
  /// of context `ctx`, ready at `ready`. Per-call arbitration overhead is
  /// one interconnect-register write (~a few fabric cycles).
  HwCall call(ContextOrdinal ctx, std::uint64_t items, SimTime ready) {
    ECO_CHECK(items > 0);
    (void)ctx;
    ++calls_;
    items_ += items;
    const SimDuration cycle = module_.cycle_time();
    const SimDuration arb = 4 * cycle;  // arbitration + context mux
    HwCall result;
    switch (mode_) {
      case SharingMode::kExclusive: {
        // Whole call is one reservation: depth + (n-1)*II plus drain.
        const SimDuration span = arb + module_.compute_time(items);
        const SimTime start = issue_.reserve(ready, span);
        result.start = start;
        result.finish = start + span;
        break;
      }
      case SharingMode::kPipelined: {
        // Only the issue bandwidth is reserved (n*II cycles); the caller's
        // last item drains depth cycles later. Different callers' items
        // back-to-back.
        const SimDuration issue_span =
            arb + items * module_.initiation_interval * cycle;
        const SimTime start = issue_.reserve(ready, issue_span);
        result.start = start;
        result.finish = start + issue_span + module_.pipeline_depth * cycle;
        break;
      }
    }
    result.energy = module_.compute_energy(items);
    return result;
  }

  const AcceleratorModule& module() const { return module_; }
  SharingMode mode() const { return mode_; }
  std::uint64_t calls() const { return calls_; }
  std::uint64_t items() const { return items_; }
  const Timeline& issue_timeline() const { return issue_; }

 private:
  std::string name_;
  AcceleratorModule module_;
  SharingMode mode_;
  Timeline issue_;
  std::uint64_t calls_ = 0;
  std::uint64_t items_ = 0;
};

}  // namespace ecoscale
