// CPU cluster model: a few ARM-class cores per Worker (paper Figure 4).
//
// Cores are serially reusable timelines; software tasks reserve
// cycles-at-clock. Context switches cost a fixed penalty, enabling the
// time-sharing comparison against coarse-grain fabric reconfiguration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/energy.h"
#include "common/units.h"
#include "sim/timeline.h"

namespace ecoscale {

struct CpuConfig {
  std::size_t cores = 4;
  double clock_ghz = 1.2;
  SimDuration context_switch = microseconds(3);
  double pj_per_cycle = 120.0;  // ARMv8-class core, dynamic
};

struct CpuExecution {
  std::size_t core = 0;
  SimTime start = 0;
  SimTime finish = 0;
  Picojoules energy = 0.0;
};

class CpuCluster {
 public:
  explicit CpuCluster(std::string name, CpuConfig config = {})
      : name_(std::move(name)), config_(config) {
    ECO_CHECK(config_.cores >= 1 && config_.clock_ghz > 0);
    for (std::size_t i = 0; i < config_.cores; ++i) {
      cores_.emplace_back(name_ + ".core" + std::to_string(i));
      last_task_.push_back(kNoTask);
    }
  }

  SimDuration cycles_to_time(double cycles) const {
    return static_cast<SimDuration>(cycles * 1000.0 / config_.clock_ghz);
  }

  /// Run `cycles` of work for `task_id` on the earliest-available core,
  /// charging a context switch if the core last ran a different task.
  CpuExecution execute(SimTime ready, double cycles,
                       std::uint64_t task_id = kNoTask) {
    ECO_CHECK(cycles >= 0);
    // Earliest-available core; deterministic tie-break by index.
    std::size_t best = 0;
    for (std::size_t i = 1; i < cores_.size(); ++i) {
      if (cores_[i].next_free() < cores_[best].next_free()) best = i;
    }
    SimDuration service = cycles_to_time(cycles);
    if (task_id != kNoTask && last_task_[best] != kNoTask &&
        last_task_[best] != task_id) {
      service += config_.context_switch;
      ++context_switches_;
    }
    last_task_[best] = task_id;
    const SimTime start = cores_[best].reserve(ready, service);
    CpuExecution e;
    e.core = best;
    e.start = start;
    e.finish = start + service;
    e.energy = config_.pj_per_cycle * cycles;
    energy_.charge("cpu.dynamic", e.energy);
    return e;
  }

  SimTime earliest_free() const {
    SimTime best = cores_.front().next_free();
    for (const auto& c : cores_) best = std::min(best, c.next_free());
    return best;
  }

  std::size_t core_count() const { return cores_.size(); }
  std::uint64_t context_switches() const { return context_switches_; }
  const EnergyMeter& energy() const { return energy_; }
  const CpuConfig& config() const { return config_; }
  SimDuration busy_time() const {
    SimDuration total = 0;
    for (const auto& c : cores_) total += c.busy_time();
    return total;
  }

  static constexpr std::uint64_t kNoTask = ~0ull;

 private:
  std::string name_;
  CpuConfig config_;
  std::vector<Timeline> cores_;
  std::vector<std::uint64_t> last_task_;
  std::uint64_t context_switches_ = 0;
  EnergyMeter energy_;
};

}  // namespace ecoscale
