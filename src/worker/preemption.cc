#include "worker/preemption.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

CheckpointResult checkpoint_accelerator(ReconfigManager& fabric,
                                        const AcceleratorModule& module,
                                        SimTime now,
                                        const PreemptionConfig& cfg) {
  ECO_CHECK_MSG(fabric.is_loaded(module.kernel),
                "checkpointing a module that is not loaded");
  CheckpointResult r;
  const SimDuration readback =
      cfg.readback_bw.transfer_time(cfg.context_bytes);
  r.done = now + cfg.freeze_latency + readback;
  r.bytes = cfg.context_bytes;
  r.energy = cfg.pj_per_context_byte * static_cast<double>(cfg.context_bytes);
  return r;
}

MigrationOutcome migrate_accelerator(Worker& source, Worker& destination,
                                     const AcceleratorModule& module,
                                     std::uint64_t remaining_items,
                                     SimTime now,
                                     const PreemptionConfig& cfg) {
  MigrationOutcome out;
  if (!source.fabric().is_loaded(module.kernel)) return out;
  // 1. Checkpoint at the source.
  const auto ckpt = checkpoint_accelerator(source.fabric(), module, now, cfg);
  // 2. Configure the destination (overlaps the checkpoint readback).
  const auto load = destination.fabric().ensure_loaded(module, now);
  if (!load) return out;
  // 3. Ship the context (source DRAM -> destination DRAM over the node
  //    interconnect; approximated by the accelerator memory bandwidth).
  const SimTime context_there =
      std::max(ckpt.done, load->ready) +
      destination.config().accel_mem_bw.transfer_time(cfg.context_bytes);
  // 4. Restore into the destination fabric + resume.
  const SimDuration restore =
      cfg.readback_bw.transfer_time(cfg.context_bytes);
  out.resumed = context_there + restore + cfg.resume_latency;
  // 5. Remaining work runs on the destination.
  const auto exec =
      destination.run_hardware(module, remaining_items, out.resumed);
  ECO_CHECK(exec.has_value());  // it is loaded: cannot fail
  out.finish = exec->finish;
  out.energy = ckpt.energy + exec->energy +
               2.0 * cfg.pj_per_context_byte *
                   static_cast<double>(cfg.context_bytes);
  out.bytes_moved =
      cfg.context_bytes + destination.fabric().wire_bytes_for(module);
  out.ok = true;
  // Source region is now free.
  source.fabric().unload(module.kernel);
  return out;
}

PreemptivePair run_preemptive(Worker& worker,
                              const AcceleratorModule& low_module,
                              std::uint64_t low_items,
                              const AcceleratorModule& high_module,
                              std::uint64_t high_items, SimTime high_arrival,
                              const PreemptionConfig& cfg) {
  PreemptivePair out;
  // Low job starts at t=0.
  const auto low = worker.run_hardware(low_module, low_items, 0);
  ECO_CHECK(low.has_value());
  if (high_arrival >= low->finish) {
    // No overlap: nothing to pre-empt.
    out.low_finish = low->finish;
    const auto high =
        worker.run_hardware(high_module, high_items, high_arrival);
    ECO_CHECK(high.has_value());
    out.high_finish = high->finish;
    return out;
  }
  // Progress made before the interrupt (items drained by high_arrival).
  const SimDuration elapsed =
      high_arrival > low->start ? high_arrival - low->start : 0;
  const SimDuration cycle = low_module.cycle_time();
  const std::uint64_t per_item =
      std::max<std::uint64_t>(1, low_module.initiation_interval) * cycle;
  const std::uint64_t done_items =
      std::min<std::uint64_t>(low_items, elapsed / per_item);
  const std::uint64_t remaining = low_items - done_items;

  // Checkpoint low, evict it, run high, then restore low and finish.
  const auto ckpt =
      checkpoint_accelerator(worker.fabric(), low_module, high_arrival, cfg);
  worker.fabric().unload(low_module.kernel);
  const auto high = worker.run_hardware(high_module, high_items, ckpt.done);
  ECO_CHECK(high.has_value());
  out.high_finish = high->finish;
  // Restore: reload low's bitstream + context, resume the tail.
  if (worker.fabric().region_of(high_module.kernel).has_value() &&
      high_module.kernel != low_module.kernel) {
    // Leave the high module resident; low reloads beside it or evicts it.
  }
  const auto reload = worker.fabric().ensure_loaded(low_module, high->finish);
  ECO_CHECK(reload.has_value());
  const SimDuration restore =
      cfg.readback_bw.transfer_time(cfg.context_bytes);
  const SimTime resume = reload->ready + restore + cfg.resume_latency;
  const auto tail = worker.run_hardware(low_module, std::max<std::uint64_t>(
                                                        remaining, 1),
                                        resume);
  ECO_CHECK(tail.has_value());
  out.low_finish = tail->finish;
  out.overhead_energy =
      ckpt.energy + 2.0 * cfg.pj_per_context_byte *
                        static_cast<double>(cfg.context_bytes);
  return out;
}

PreemptivePair run_to_completion(Worker& worker,
                                 const AcceleratorModule& low_module,
                                 std::uint64_t low_items,
                                 const AcceleratorModule& high_module,
                                 std::uint64_t high_items,
                                 SimTime high_arrival) {
  PreemptivePair out;
  const auto low = worker.run_hardware(low_module, low_items, 0);
  ECO_CHECK(low.has_value());
  out.low_finish = low->finish;
  const SimTime start = std::max(high_arrival, low->finish);
  const auto high = worker.run_hardware(high_module, high_items, start);
  ECO_CHECK(high.has_value());
  out.high_finish = high->finish;
  return out;
}

}  // namespace ecoscale
