// The ECOSCALE Worker node (paper Figure 4, right side).
//
// A Worker bundles: a CPU cluster, a reconfigurable block (fabric +
// reconfiguration manager), a dual-stage SMMU, and per-accelerator
// virtualization blocks. It provides the two execution paths the runtime
// chooses between — software on the local CPU, or hardware on a (local or
// remote) reconfigurable block — with full latency/energy accounting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "address/smmu.h"
#include "common/energy.h"
#include "fabric/reconfig.h"
#include "hls/ir.h"
#include "worker/cpu.h"
#include "worker/virtualization.h"

namespace ecoscale {

struct WorkerConfig {
  CpuConfig cpu;
  ReconfigConfig fabric;
  SmmuConfig smmu;
  SharingMode sharing = SharingMode::kPipelined;
  /// Accelerator-side memory streaming bandwidth for kernel I/O.
  Bandwidth accel_mem_bw = Bandwidth::from_gib_per_s(6.4);
  double accel_mem_pj_per_byte = 4.0;  // local coherent-port access
};

struct ExecResult {
  SimTime start = 0;
  SimTime finish = 0;
  Picojoules energy = 0.0;
  bool hardware = false;
  bool reconfigured = false;
};

class Worker {
 public:
  Worker(WorkerCoord coord, WorkerConfig config = {})
      : coord_(coord),
        config_(config),
        cpu_(coord.str() + ".cpu", config.cpu),
        fabric_(coord.str() + ".fabric", config.fabric),
        smmu_(config.smmu) {
    fabric_.set_trace_lane(obs::Lane{coord.node, coord.worker});
  }

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  WorkerCoord coord() const { return coord_; }

  /// Execute `items` iterations of `kernel` in software.
  ExecResult run_software(const KernelIR& kernel, std::uint64_t items,
                          SimTime ready, std::uint64_t task_id = 0) {
    const double cycles =
        kernel.cpu_cycles_per_item * static_cast<double>(items);
    const auto e = cpu_.execute(ready, cycles, task_id);
    ExecResult r;
    r.start = e.start;
    r.finish = e.finish;
    r.energy = e.energy;
    r.hardware = false;
    energy_.charge("worker.sw", e.energy);
    return r;
  }

  /// Execute `items` through a hardware module on the local fabric,
  /// loading it first if needed. Includes data streaming time on the
  /// accelerator's memory port. Returns nullopt if the module cannot fit.
  std::optional<ExecResult> run_hardware(const AcceleratorModule& module,
                                         std::uint64_t items, SimTime ready,
                                         VirtualizationBlock::ContextOrdinal
                                             ctx = 0) {
    const auto load = fabric_.ensure_loaded(module, ready);
    if (!load) return std::nullopt;
    VirtualizationBlock& vb = block_for(module, load->region);
    const SimTime go = std::max(ready, load->ready);
    // Data streaming overlaps the pipeline after a one-burst head start;
    // the effective start is bounded by memory bandwidth for the input set.
    const Bytes moved =
        items * (module.bytes_in_per_item + module.bytes_out_per_item);
    const SimDuration stream = config_.accel_mem_bw.transfer_time(moved);
    const auto call = vb.call(ctx, items, go);
    ExecResult r;
    r.start = ready;  // duration includes configuration and pipeline waits
    // Compute and streaming overlap; the call completes when the slower
    // of pipeline drain and data movement finishes.
    r.finish = std::max(call.finish, call.start + stream);
    fabric_.set_busy_until(load->region, r.finish);
    r.energy = call.energy +
               config_.accel_mem_pj_per_byte * static_cast<double>(moved);
    r.hardware = true;
    r.reconfigured = load->reconfigured;
    energy_.charge("worker.hw", call.energy);
    energy_.charge("worker.hw_mem",
                   config_.accel_mem_pj_per_byte * static_cast<double>(moved));
    return r;
  }

  CpuCluster& cpu() { return cpu_; }
  ReconfigManager& fabric() { return fabric_; }
  Smmu& smmu() { return smmu_; }
  const EnergyMeter& energy() const { return energy_; }
  const WorkerConfig& config() const { return config_; }

  /// Virtualization block for a loaded module, if it exists.
  VirtualizationBlock* find_block(KernelId kernel) {
    auto it = blocks_.find(kernel);
    return it == blocks_.end() ? nullptr : it->second.get();
  }

 private:
  VirtualizationBlock& block_for(const AcceleratorModule& module,
                                 RegionId region) {
    (void)region;
    auto it = blocks_.find(module.kernel);
    if (it == blocks_.end()) {
      it = blocks_
               .emplace(module.kernel,
                        std::make_unique<VirtualizationBlock>(
                            coord_.str() + "." + module.name, module,
                            config_.sharing))
               .first;
    }
    return *it->second;
  }

  WorkerCoord coord_;
  WorkerConfig config_;
  CpuCluster cpu_;
  ReconfigManager fabric_;
  Smmu smmu_;
  std::map<KernelId, std::unique_ptr<VirtualizationBlock>> blocks_;
  EnergyMeter energy_;
};

}  // namespace ecoscale
