// Power and DVFS modelling for Workers (the paper's energy-efficiency
// core theme: §1 "1 GW" motivation, §4.2 energy models and monitoring).
//
// Dynamic energy per cycle scales ~quadratically with frequency (voltage
// tracks frequency); static power is constant while the component is on.
// The model answers the scheduling question the runtime's energy objective
// poses: for a task with a deadline, is it cheaper to race-to-idle at max
// frequency or crawl just-in-time at low frequency? The answer flips with
// the static/dynamic power ratio — which is why it is a model, not a rule.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace ecoscale {

struct DvfsPoint {
  double clock_ghz = 1.2;
  double pj_per_cycle = 120.0;  // dynamic energy at this point
};

/// A plausible ARM-class operating-point ladder: pj/cycle ∝ f² around the
/// nominal 1.2 GHz / 120 pJ point.
inline std::vector<DvfsPoint> default_dvfs_ladder() {
  std::vector<DvfsPoint> pts;
  for (const double f : {0.6, 0.8, 1.0, 1.2, 1.5, 1.8}) {
    DvfsPoint p;
    p.clock_ghz = f;
    p.pj_per_cycle = 120.0 * (f / 1.2) * (f / 1.2);
    pts.push_back(p);
  }
  return pts;
}

struct EnergyTime {
  SimDuration time = 0;
  Picojoules energy = 0.0;  // dynamic + static over `time`
};

/// Run `cycles` of work at one operating point with `static_watts` of
/// always-on power charged for the duration.
inline EnergyTime run_at(double cycles, const DvfsPoint& point,
                         double static_watts) {
  ECO_CHECK(cycles >= 0 && point.clock_ghz > 0);
  EnergyTime r;
  r.time = static_cast<SimDuration>(cycles * 1000.0 / point.clock_ghz);
  const double seconds = to_seconds(r.time);
  r.energy = point.pj_per_cycle * cycles + static_watts * seconds * 1e12;
  return r;
}

/// Energy to complete `cycles` by `deadline`: run at the chosen point,
/// then idle (static power only, optionally gated to `idle_watts`) until
/// the deadline. Returns nullopt if the point cannot meet the deadline.
inline std::optional<Picojoules> energy_with_deadline(
    double cycles, const DvfsPoint& point, double static_watts,
    double idle_watts, SimDuration deadline) {
  const EnergyTime busy = run_at(cycles, point, static_watts);
  if (busy.time > deadline) return std::nullopt;
  const double idle_seconds = to_seconds(deadline - busy.time);
  return busy.energy + idle_watts * idle_seconds * 1e12;
}

/// The best operating point for (cycles, deadline): minimal total energy.
inline std::optional<DvfsPoint> best_dvfs_point(
    double cycles, double static_watts, double idle_watts,
    SimDuration deadline,
    const std::vector<DvfsPoint>& ladder = default_dvfs_ladder()) {
  std::optional<DvfsPoint> best;
  double best_energy = 0.0;
  for (const auto& p : ladder) {
    const auto e =
        energy_with_deadline(cycles, p, static_watts, idle_watts, deadline);
    if (!e) continue;
    if (!best || *e < best_energy) {
      best = p;
      best_energy = *e;
    }
  }
  return best;
}

}  // namespace ecoscale
