// Pre-emptive hardware execution and accelerator migration (paper §4.3:
// the middleware's low-level driver "will add virtualization features,
// such as defragmenting the reconfigurable resources, accelerator
// migration, and pre-emptive hardware execution").
//
// Model: a running module can be frozen, its architectural state (pipeline
// registers + local BRAM contents) read back over the configuration port,
// and later restored — on the same fabric (pre-emption) or on another
// Worker's fabric (migration, which additionally loads the partial
// bitstream there). Costs are dominated by context size over ICAP
// bandwidth, exactly as in real PR systems.
#pragma once

#include <cstdint>
#include <optional>

#include "common/units.h"
#include "fabric/accelerator.h"
#include "fabric/reconfig.h"
#include "worker/worker.h"

namespace ecoscale {

struct PreemptionConfig {
  /// Architectural state to save: pipeline registers + live local arrays.
  Bytes context_bytes = 8 * kKiB;
  /// Configuration-port readback bandwidth (ICAP readback ≈ write rate).
  Bandwidth readback_bw = Bandwidth::from_gib_per_s(0.4);
  /// Quiesce the pipeline before capture (drain in-flight items).
  SimDuration freeze_latency = microseconds(2);
  /// Restore-side unfreeze.
  SimDuration resume_latency = microseconds(1);
  double pj_per_context_byte = 2.0;
};

struct CheckpointResult {
  SimTime done = 0;        // when the context is safely in DRAM
  Bytes bytes = 0;
  Picojoules energy = 0.0;
};

/// Freeze + read back a loaded module's context.
CheckpointResult checkpoint_accelerator(ReconfigManager& fabric,
                                        const AcceleratorModule& module,
                                        SimTime now,
                                        const PreemptionConfig& cfg = {});

struct MigrationOutcome {
  bool ok = false;
  SimTime resumed = 0;   // execution continues on the destination
  SimTime finish = 0;    // remaining items complete
  Picojoules energy = 0.0;
  Bytes bytes_moved = 0;  // context + bitstream
};

/// Move a running accelerator (with `remaining_items` of work) from one
/// Worker's fabric to another's: checkpoint at the source, configure the
/// destination, ship + restore the context, resume.
MigrationOutcome migrate_accelerator(Worker& source, Worker& destination,
                                     const AcceleratorModule& module,
                                     std::uint64_t remaining_items,
                                     SimTime now,
                                     const PreemptionConfig& cfg = {});

struct PreemptivePair {
  SimTime low_finish = 0;
  SimTime high_finish = 0;
  Picojoules overhead_energy = 0.0;  // checkpoint/restore cost
};

/// The scheduling primitive the feature exists for: a low-priority job is
/// running when a high-priority job arrives at `high_arrival`.
///  * preemptive: freeze low, save context, run high, restore low, finish.
///  * run-to-completion: high waits for low.
/// Assumes both modules fit the fabric one-at-a-time (worst case: the high
/// job needs the low job's region).
PreemptivePair run_preemptive(Worker& worker,
                              const AcceleratorModule& low_module,
                              std::uint64_t low_items,
                              const AcceleratorModule& high_module,
                              std::uint64_t high_items, SimTime high_arrival,
                              const PreemptionConfig& cfg = {});

PreemptivePair run_to_completion(Worker& worker,
                                 const AcceleratorModule& low_module,
                                 std::uint64_t low_items,
                                 const AcceleratorModule& high_module,
                                 std::uint64_t high_items,
                                 SimTime high_arrival);

}  // namespace ecoscale
