#include "serve/kvstore.h"

#include <array>
#include <cstring>
#include <span>

#include "common/check.h"
#include "common/reduce.h"
#include "interconnect/network.h"
#include "obs/trace.h"

namespace ecoscale::serve {

namespace {

/// splitmix64 — the same finalizer Rng seeds with; good avalanche, so the
/// node/worker partition fields are decorrelated.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// payload[0] layout: [63:62] op, [61:44] origin, [43:0] key.
constexpr std::uint64_t kKeyBits = 44;
constexpr std::uint64_t kOriginBits = 18;
constexpr std::uint64_t kKeyMask = (1ull << kKeyBits) - 1;
constexpr std::uint64_t kOriginMask = (1ull << kOriginBits) - 1;

std::uint64_t pack_request(KvOp op, std::size_t origin, std::uint64_t key) {
  return (static_cast<std::uint64_t>(op) << 62) |
         ((static_cast<std::uint64_t>(origin) & kOriginMask) << kKeyBits) |
         (key & kKeyMask);
}

struct Decoded {
  KvOp op;
  std::size_t origin;
  std::uint64_t key;
};

Decoded unpack_request(std::uint64_t word) {
  return Decoded{static_cast<KvOp>(word >> 62),
                 static_cast<std::size_t>((word >> kKeyBits) & kOriginMask),
                 word & kKeyMask};
}

/// Fixed functional slot: [present, value], 16 bytes.
constexpr Bytes kSlotBytes = 16;

struct ServeTraceNames {
  CounterId apply = CounterRegistry::intern("serve.apply");
  CounterId shed = CounterRegistry::intern("serve.shed");
  CounterId forward = CounterRegistry::intern("serve.forward");
  CounterId block_move = CounterRegistry::intern("unimem.block_move");
};
[[maybe_unused]] const ServeTraceNames& serve_trace_names() {
  static const ServeTraceNames names;
  return names;
}

}  // namespace

const char* kv_op_name(KvOp op) {
  switch (op) {
    case KvOp::kGet: return "get";
    case KvOp::kSet: return "set";
    case KvOp::kDelete: return "del";
  }
  return "?";
}

KernelIR make_kv_kernel() {
  KernelIR k;
  k.name = "kv.request";
  k.id = 0x5E27;
  k.ops.int_add = 6;
  k.ops.int_mul = 1;
  k.ops.compare = 4;
  k.loads = 2;
  k.stores = 1;
  k.bytes_in = 64;
  k.bytes_out = 16;
  k.cpu_cycles_per_item = 3.0;
  return k;
}

KvStore::KvStore(ShardedRuntime& rt, KvConfig config)
    : rt_(rt), config_(config), kernel_(make_kv_kernel()) {
  nodes_ = rt_.node_count();
  ECO_CHECK_MSG(config_.key_space > 0 && config_.key_space <= kKeyMask,
                "key_space must fit the 44-bit payload key field");
  ECO_CHECK_MSG(nodes_ <= kOriginMask, "too many nodes for payload origin");
  ECO_CHECK_MSG(
      rt_.runtime(0).config().distribution == DistributionPolicy::kHomeOnly,
      "KvStore requires home-only distribution: spilling a key off its "
      "owning worker would break per-key serialization");

  const std::size_t per_node = rt_.machine(0).workers_per_node();

  if (config_.repart_blocks > 0) {
    // Block mode: contiguous key-range blocks, each pinned to worker
    // (block % per_node) on whichever node currently owns it. Every node
    // allocates a region big enough for the whole key space so any block
    // can migrate in; slots assign in key order, so a block's slots are
    // contiguous (migrate_item moves them as one DMA).
    ECO_CHECK_MSG(config_.repart_blocks <= config_.key_space,
                  "more blocks than keys");
    static_block_owner_.resize(config_.repart_blocks);
    for (std::uint32_t b = 0; b < config_.repart_blocks; ++b) {
      static_block_owner_[b] =
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(b) * nodes_ /
                                     config_.repart_blocks);
    }
    std::vector<std::uint64_t> counts(per_node, 0);
    for (std::uint64_t key = 0; key < config_.key_space; ++key) {
      ++counts[block_of(key) % per_node];
    }
    block_slot_addr_.assign(
        nodes_, std::vector<std::uint64_t>(config_.key_space, 0));
    for (std::size_t n = 0; n < nodes_; ++n) {
      std::vector<GlobalAddress> base(per_node);
      for (std::size_t w = 0; w < per_node; ++w) {
        if (counts[w] == 0) continue;
        base[w] = rt_.machine(n).pgas().alloc(0, static_cast<WorkerId>(w),
                                              counts[w] * kSlotBytes);
      }
      std::vector<std::uint64_t> cursor(per_node, 0);
      for (std::uint64_t key = 0; key < config_.key_space; ++key) {
        const std::size_t w = block_of(key) % per_node;
        block_slot_addr_[n][key] = (base[w] + cursor[w] * kSlotBytes).raw();
        ++cursor[w];
      }
    }
  } else {
    // Partition pass 1: count keys per (node, worker).
    std::vector<std::vector<std::uint64_t>> counts(
        nodes_, std::vector<std::uint64_t>(per_node, 0));
    owner_node_of_key_.resize(config_.key_space);
    std::vector<std::uint32_t> worker_of_key(config_.key_space);
    for (std::uint64_t key = 0; key < config_.key_space; ++key) {
      const std::uint64_t h = mix64(key);
      const auto node = static_cast<std::uint32_t>(h % nodes_);
      const auto worker = static_cast<std::uint32_t>((h >> 32) % per_node);
      owner_node_of_key_[key] = node;
      worker_of_key[key] = worker;
      ++counts[node][worker];
    }
    // Pass 2: one PGAS region per (node, worker) in that node's private
    // UNIMEM domain (the shard is the node, so node-local coordinates).
    std::vector<std::vector<GlobalAddress>> base(
        nodes_, std::vector<GlobalAddress>(per_node));
    for (std::size_t n = 0; n < nodes_; ++n) {
      for (std::size_t w = 0; w < per_node; ++w) {
        if (counts[n][w] == 0) continue;
        base[n][w] = rt_.machine(n).pgas().alloc(
            0, static_cast<WorkerId>(w), counts[n][w] * kSlotBytes);
      }
    }
    // Pass 3: assign slots in key order.
    slot_addr_of_key_.resize(config_.key_space);
    std::vector<std::vector<std::uint64_t>> cursor(
        nodes_, std::vector<std::uint64_t>(per_node, 0));
    for (std::uint64_t key = 0; key < config_.key_space; ++key) {
      const std::uint32_t n = owner_node_of_key_[key];
      const std::uint32_t w = worker_of_key[key];
      slot_addr_of_key_[key] =
          (base[n][w] + cursor[n][w] * kSlotBytes).raw();
      ++cursor[n][w];
    }
  }

  apply_log_.resize(nodes_);
  sheds_.assign(nodes_, 0);
  remote_issues_.assign(nodes_, 0);
  forwards_.assign(nodes_, 0);
  byte_hops_.assign(nodes_, 0);

  rt_.register_kernel(kernel_, /*variants=*/{});
  for (std::size_t n = 0; n < nodes_; ++n) {
    rt_.runtime(n).set_completion_handler(
        [this, n](const Task& task, const TaskResult& result) {
          if (task.kernel == kernel_.id) on_complete(n, task, result);
        });
    rt_.runtime(n).set_shed_handler(
        [this, n](const Task& task, SimTime at) {
          if (task.kernel == kernel_.id) on_shed(n, task, at);
        });
  }
}

void KvStore::issue(std::size_t origin, KvOp op, std::uint64_t key,
                    std::uint64_t value, TaskId request) {
  ECO_CHECK(origin < nodes_);
  ECO_CHECK(key < config_.key_space);
  ECO_CHECK_MSG(request != 0, "request ids must be nonzero");
  const std::size_t owner = owner_of(key);
  WorkerId home_worker;
  if (config_.repart_blocks > 0) {
    const std::uint32_t block = block_of(key);
    home_worker = static_cast<WorkerId>(
        block % rt_.machine(0).workers_per_node());
    // Issue-side load recording at the *origin* shard: the offered load of
    // a block is what its clients want, not what its (possibly dead)
    // owner manages to serve.
    if (repart_ != nullptr) {
      repart::LoadTracker& tracker = repart_->tracker();
      tracker.record_access(origin, block, static_cast<std::uint32_t>(origin),
                            config_.value_bytes);
      tracker.record_work(origin, block, config_.service_items);
    }
    if (owner != origin) {
      ++remote_issues_[origin];
      byte_hops_[origin] +=
          2 * config_.value_bytes *
          static_cast<std::uint64_t>(rt_.internode().hop_count(origin, owner));
    }
  } else {
    home_worker = GlobalAddress::from_raw(slot_addr_of_key_[key]).worker();
  }

  Task task;
  task.id = request;
  task.kernel = kernel_.id;
  task.items = config_.service_items;
  task.features.items = static_cast<double>(config_.service_items);
  task.features.bytes = static_cast<double>(config_.value_bytes);
  task.home = WorkerCoord{0, home_worker};  // node-local owning worker
  task.payload[0] = pack_request(op, origin, key);
  task.payload[1] = value;
  if (owner == origin) {
    task.release = rt_.shard(origin).now();
    rt_.submit(origin, task);
  } else {
    // The cross-node hop must depart from an action executing on the
    // origin shard (ShardedSimulator::post's contract); wrapping in a
    // same-time origin event keeps issue() valid before run() too.
    Simulator& shard = rt_.shard(origin);
    shard.schedule_at(shard.now(), [this, origin, owner, task] {
      rt_.post_task(origin, owner, task);
    });
  }
}

void KvStore::on_complete(std::size_t owner, const Task& task,
                          const TaskResult& result) {
  const Decoded req = unpack_request(task.payload[0]);
  if (config_.repart_blocks > 0) {
    const std::size_t current = block_owner(block_of(req.key));
    if (current != owner) {
      // Stale routing: the block migrated while this request was queued
      // or in flight. Re-home it to the current owner — the request pays
      // the detour (the service work here was wasted), which is the real
      // cost model of chasing a moved partition.
      ++forwards_[owner];
      byte_hops_[owner] +=
          config_.value_bytes * static_cast<std::uint64_t>(
                                    rt_.internode().hop_count(owner, current));
      ECO_TRACE_INSTANT(obs::Cat::kServe, serve_trace_names().forward,
                        (obs::Lane{static_cast<std::uint16_t>(owner), 0}),
                        result.finished, task.id);
      rt_.post_task(owner, current, task);
      return;
    }
  }
  PgasSystem& pgas = rt_.machine(owner).pgas();
  const GlobalAddress slot = GlobalAddress::from_raw(
      config_.repart_blocks > 0 ? block_slot_addr_[owner][req.key]
                                : slot_addr_of_key_[req.key]);
  const WorkerCoord who = pgas.coord(result.executed_on);

  // Timed storage access at the worker that executed the request: GET
  // reads the value, SET/DELETE write it. The access is issued at the
  // kernel's finish (we are inside the completion event, so now() ==
  // result.finished) and its finish is when the response can depart.
  const MemAccess acc =
      (req.op == KvOp::kGet)
          ? pgas.load(who, slot, config_.value_bytes, result.finished)
          : pgas.store(who, slot, config_.value_bytes, result.finished);

  // Functional apply on the 16-byte slot [present, value].
  std::array<std::uint64_t, 2> words{};
  pgas.read_bytes(slot,
                  std::span<std::uint8_t>(
                      reinterpret_cast<std::uint8_t*>(words.data()),
                      static_cast<std::size_t>(kSlotBytes)));
  KvApplyRecord rec;
  rec.at = acc.finish;
  rec.request = task.id;
  rec.key = req.key;
  rec.op = req.op;
  switch (req.op) {
    case KvOp::kGet:
      rec.found = words[0] != 0;
      rec.returned = rec.found ? words[1] : 0;
      break;
    case KvOp::kSet:
      rec.value = task.payload[1];
      words[0] = 1;
      words[1] = task.payload[1];
      break;
    case KvOp::kDelete:
      rec.found = words[0] != 0;
      words[0] = 0;
      words[1] = 0;
      break;
  }
  if (req.op != KvOp::kGet) {
    pgas.write_bytes(slot,
                     std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(words.data()),
                         static_cast<std::size_t>(kSlotBytes)));
  }
  apply_log_[owner].push_back(rec);
  ECO_TRACE_INSTANT(obs::Cat::kServe, serve_trace_names().apply,
                    (obs::Lane{static_cast<std::uint16_t>(owner),
                               static_cast<std::uint16_t>(who.worker)}),
                    acc.finish, task.id);

  KvResponse resp;
  resp.request = task.id;
  resp.key = req.key;
  resp.op = req.op;
  resp.found = rec.found;
  resp.value = (req.op == KvOp::kGet) ? rec.returned : rec.value;
  respond(owner, req.origin, resp, acc.finish);
}

void KvStore::on_shed(std::size_t owner, const Task& task, SimTime at) {
  const Decoded req = unpack_request(task.payload[0]);
  ++sheds_[owner];
  ECO_TRACE_INSTANT(obs::Cat::kServe, serve_trace_names().shed,
                    (obs::Lane{static_cast<std::uint16_t>(owner), 0}), at,
                    task.id);
  KvResponse resp;
  resp.request = task.id;
  resp.key = req.key;
  resp.op = req.op;
  resp.shed = true;
  respond(owner, req.origin, resp, at);
}

void KvStore::respond(std::size_t owner, std::size_t origin, KvResponse resp,
                      SimTime depart) {
  if (!response_handler_) return;
  auto deliver = [this, origin, resp]() mutable {
    resp.completed = rt_.shard(origin).now();
    response_handler_(origin, resp);
  };
  if (origin == owner) {
    rt_.shard(owner).schedule_at(depart, std::move(deliver));
  } else {
    // Cross-node reply: departs the owner at `depart`, pays the
    // inter-node head latency through the engine mailboxes.
    const SimTime now = rt_.shard(owner).now();
    rt_.post(owner, origin, depart - now, std::move(deliver));
  }
}

std::uint64_t KvStore::block_first(std::uint32_t block) const {
  // Inverse of block_of (floor(key * blocks / keys)): smallest key that
  // lands in `block`.
  return (static_cast<std::uint64_t>(block) * config_.key_space +
          config_.repart_blocks - 1) /
         config_.repart_blocks;
}

std::uint64_t KvStore::block_keys(std::uint32_t block) const {
  return block_first(block + 1) - block_first(block);
}

void KvStore::attach_repartitioner(repart::Repartitioner* rp) {
  ECO_CHECK_MSG(config_.repart_blocks > 0,
                "attach_repartitioner needs block mode (repart_blocks > 0)");
  ECO_CHECK(rp != nullptr && rp->item_count() == config_.repart_blocks);
  repart_ = rp;
  rp->set_client(this);
}

std::uint64_t KvStore::item_bytes(std::uint32_t block) const {
  return block_keys(block) * kSlotBytes;
}

void KvStore::migrate_item(std::uint32_t block, std::uint32_t from,
                           std::uint32_t to, SimTime at) {
  ECO_CHECK(config_.repart_blocks > 0 && from < nodes_ && to < nodes_);
  PgasSystem& src = rt_.machine(from).pgas();
  PgasSystem& dst = rt_.machine(to).pgas();
  const std::uint64_t first = block_first(block);
  const std::uint64_t count = block_keys(block);
  // Functional move, slot by slot; the source slots are wiped so a bug
  // that reads them after the cut surfaces as data loss, not stale data.
  std::array<std::uint64_t, 2> words{};
  const std::array<std::uint64_t, 2> zero{};
  for (std::uint64_t key = first; key < first + count; ++key) {
    const auto s = GlobalAddress::from_raw(block_slot_addr_[from][key]);
    const auto d = GlobalAddress::from_raw(block_slot_addr_[to][key]);
    src.read_bytes(s, std::span<std::uint8_t>(
                          reinterpret_cast<std::uint8_t*>(words.data()),
                          static_cast<std::size_t>(kSlotBytes)));
    dst.write_bytes(d, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(words.data()),
                           static_cast<std::size_t>(kSlotBytes)));
    src.write_bytes(s, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(zero.data()),
                           static_cast<std::size_t>(kSlotBytes)));
  }
  // Timed UNIMEM block DMA: one bulk read out of the donor, the wire
  // latency, one bulk write into the receiver. A block's slots are
  // contiguous in both regions, so each end is a single access. We are at
  // an epoch pause (no shard running), so issuing timed accesses here is
  // single-threaded and in deterministic plan order.
  const auto worker = static_cast<WorkerId>(
      block % rt_.machine(0).workers_per_node());
  const Bytes bytes = count * kSlotBytes;
  const MemAccess rd =
      src.load(WorkerCoord{0, worker},
               GlobalAddress::from_raw(block_slot_addr_[from][first]), bytes,
               at);
  const SimTime arrive =
      std::max(rd.finish, at + rt_.inter_node_latency(from, to));
  const MemAccess wr =
      dst.store(WorkerCoord{0, worker},
                GlobalAddress::from_raw(block_slot_addr_[to][first]), bytes,
                arrive);
  ECO_TRACE_SPAN(obs::Cat::kUnimem, serve_trace_names().block_move,
                 (obs::Lane{static_cast<std::uint16_t>(to),
                            static_cast<std::uint16_t>(worker)}),
                 at, wr.finish, block);
}

KvStore::CrossStats KvStore::cross_stats() const {
  return reduce_tree<CrossStats>(
      nodes_, CrossStats{},
      [&](std::size_t n) {
        return CrossStats{remote_issues_[n], forwards_[n], byte_hops_[n]};
      },
      [](CrossStats a, const CrossStats& b) {
        a.remote_issues += b.remote_issues;
        a.forwards += b.forwards;
        a.byte_hops += b.byte_hops;
        return a;
      });
}

std::uint64_t KvStore::sheds() const {
  std::uint64_t total = 0;
  for (const std::uint64_t s : sheds_) total += s;
  return total;
}

std::uint64_t KvStore::apply_log_hash() const {
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  auto mix_word = [](std::uint64_t h, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= kFnvPrime;
    }
    return h;
  };
  // Per-node FNV streams folded with a balanced deterministic tree: the
  // result depends only on the logs' contents and the node count.
  return reduce_tree<std::uint64_t>(
      nodes_, kFnvOffset,
      [&](std::size_t n) {
        std::uint64_t h = kFnvOffset;
        for (const KvApplyRecord& r : apply_log_[n]) {
          h = mix_word(h, r.at);
          h = mix_word(h, r.request);
          h = mix_word(h, r.key);
          h = mix_word(h, static_cast<std::uint64_t>(r.op));
          h = mix_word(h, r.value);
          h = mix_word(h, r.found);
          h = mix_word(h, r.returned);
        }
        return h;
      },
      [&](std::uint64_t a, std::uint64_t b) { return mix_word(a, b); });
}

}  // namespace ecoscale::serve
