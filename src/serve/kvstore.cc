#include "serve/kvstore.h"

#include <array>
#include <cstring>
#include <span>

#include "common/check.h"
#include "common/reduce.h"
#include "obs/trace.h"

namespace ecoscale::serve {

namespace {

/// splitmix64 — the same finalizer Rng seeds with; good avalanche, so the
/// node/worker partition fields are decorrelated.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// payload[0] layout: [63:62] op, [61:44] origin, [43:0] key.
constexpr std::uint64_t kKeyBits = 44;
constexpr std::uint64_t kOriginBits = 18;
constexpr std::uint64_t kKeyMask = (1ull << kKeyBits) - 1;
constexpr std::uint64_t kOriginMask = (1ull << kOriginBits) - 1;

std::uint64_t pack_request(KvOp op, std::size_t origin, std::uint64_t key) {
  return (static_cast<std::uint64_t>(op) << 62) |
         ((static_cast<std::uint64_t>(origin) & kOriginMask) << kKeyBits) |
         (key & kKeyMask);
}

struct Decoded {
  KvOp op;
  std::size_t origin;
  std::uint64_t key;
};

Decoded unpack_request(std::uint64_t word) {
  return Decoded{static_cast<KvOp>(word >> 62),
                 static_cast<std::size_t>((word >> kKeyBits) & kOriginMask),
                 word & kKeyMask};
}

/// Fixed functional slot: [present, value], 16 bytes.
constexpr Bytes kSlotBytes = 16;

struct ServeTraceNames {
  CounterId apply = CounterRegistry::intern("serve.apply");
  CounterId shed = CounterRegistry::intern("serve.shed");
};
[[maybe_unused]] const ServeTraceNames& serve_trace_names() {
  static const ServeTraceNames names;
  return names;
}

}  // namespace

const char* kv_op_name(KvOp op) {
  switch (op) {
    case KvOp::kGet: return "get";
    case KvOp::kSet: return "set";
    case KvOp::kDelete: return "del";
  }
  return "?";
}

KernelIR make_kv_kernel() {
  KernelIR k;
  k.name = "kv.request";
  k.id = 0x5E27;
  k.ops.int_add = 6;
  k.ops.int_mul = 1;
  k.ops.compare = 4;
  k.loads = 2;
  k.stores = 1;
  k.bytes_in = 64;
  k.bytes_out = 16;
  k.cpu_cycles_per_item = 3.0;
  return k;
}

KvStore::KvStore(ShardedRuntime& rt, KvConfig config)
    : rt_(rt), config_(config), kernel_(make_kv_kernel()) {
  nodes_ = rt_.node_count();
  ECO_CHECK_MSG(config_.key_space > 0 && config_.key_space <= kKeyMask,
                "key_space must fit the 44-bit payload key field");
  ECO_CHECK_MSG(nodes_ <= kOriginMask, "too many nodes for payload origin");
  ECO_CHECK_MSG(
      rt_.runtime(0).config().distribution == DistributionPolicy::kHomeOnly,
      "KvStore requires home-only distribution: spilling a key off its "
      "owning worker would break per-key serialization");

  const std::size_t per_node = rt_.machine(0).workers_per_node();

  // Partition pass 1: count keys per (node, worker).
  std::vector<std::vector<std::uint64_t>> counts(
      nodes_, std::vector<std::uint64_t>(per_node, 0));
  owner_node_of_key_.resize(config_.key_space);
  std::vector<std::uint32_t> worker_of_key(config_.key_space);
  for (std::uint64_t key = 0; key < config_.key_space; ++key) {
    const std::uint64_t h = mix64(key);
    const auto node = static_cast<std::uint32_t>(h % nodes_);
    const auto worker = static_cast<std::uint32_t>((h >> 32) % per_node);
    owner_node_of_key_[key] = node;
    worker_of_key[key] = worker;
    ++counts[node][worker];
  }
  // Pass 2: one PGAS region per (node, worker) in that node's private
  // UNIMEM domain (the shard is the node, so node-local coordinates).
  std::vector<std::vector<GlobalAddress>> base(
      nodes_, std::vector<GlobalAddress>(per_node));
  for (std::size_t n = 0; n < nodes_; ++n) {
    for (std::size_t w = 0; w < per_node; ++w) {
      if (counts[n][w] == 0) continue;
      base[n][w] = rt_.machine(n).pgas().alloc(
          0, static_cast<WorkerId>(w), counts[n][w] * kSlotBytes);
    }
  }
  // Pass 3: assign slots in key order.
  slot_addr_of_key_.resize(config_.key_space);
  std::vector<std::vector<std::uint64_t>> cursor(
      nodes_, std::vector<std::uint64_t>(per_node, 0));
  for (std::uint64_t key = 0; key < config_.key_space; ++key) {
    const std::uint32_t n = owner_node_of_key_[key];
    const std::uint32_t w = worker_of_key[key];
    slot_addr_of_key_[key] =
        (base[n][w] + cursor[n][w] * kSlotBytes).raw();
    ++cursor[n][w];
  }

  apply_log_.resize(nodes_);
  sheds_.assign(nodes_, 0);

  rt_.register_kernel(kernel_, /*variants=*/{});
  for (std::size_t n = 0; n < nodes_; ++n) {
    rt_.runtime(n).set_completion_handler(
        [this, n](const Task& task, const TaskResult& result) {
          if (task.kernel == kernel_.id) on_complete(n, task, result);
        });
    rt_.runtime(n).set_shed_handler(
        [this, n](const Task& task, SimTime at) {
          if (task.kernel == kernel_.id) on_shed(n, task, at);
        });
  }
}

void KvStore::issue(std::size_t origin, KvOp op, std::uint64_t key,
                    std::uint64_t value, TaskId request) {
  ECO_CHECK(origin < nodes_);
  ECO_CHECK(key < config_.key_space);
  ECO_CHECK_MSG(request != 0, "request ids must be nonzero");
  const std::size_t owner = owner_node_of_key_[key];
  const GlobalAddress slot = GlobalAddress::from_raw(slot_addr_of_key_[key]);

  Task task;
  task.id = request;
  task.kernel = kernel_.id;
  task.items = config_.service_items;
  task.features.items = static_cast<double>(config_.service_items);
  task.features.bytes = static_cast<double>(config_.value_bytes);
  task.home = WorkerCoord{0, slot.worker()};  // node-local owning worker
  task.payload[0] = pack_request(op, origin, key);
  task.payload[1] = value;
  if (owner == origin) {
    task.release = rt_.shard(origin).now();
    rt_.submit(origin, task);
  } else {
    // The cross-node hop must depart from an action executing on the
    // origin shard (ShardedSimulator::post's contract); wrapping in a
    // same-time origin event keeps issue() valid before run() too.
    Simulator& shard = rt_.shard(origin);
    shard.schedule_at(shard.now(), [this, origin, owner, task] {
      rt_.post_task(origin, owner, task);
    });
  }
}

void KvStore::on_complete(std::size_t owner, const Task& task,
                          const TaskResult& result) {
  const Decoded req = unpack_request(task.payload[0]);
  PgasSystem& pgas = rt_.machine(owner).pgas();
  const GlobalAddress slot =
      GlobalAddress::from_raw(slot_addr_of_key_[req.key]);
  const WorkerCoord who = pgas.coord(result.executed_on);

  // Timed storage access at the worker that executed the request: GET
  // reads the value, SET/DELETE write it. The access is issued at the
  // kernel's finish (we are inside the completion event, so now() ==
  // result.finished) and its finish is when the response can depart.
  const MemAccess acc =
      (req.op == KvOp::kGet)
          ? pgas.load(who, slot, config_.value_bytes, result.finished)
          : pgas.store(who, slot, config_.value_bytes, result.finished);

  // Functional apply on the 16-byte slot [present, value].
  std::array<std::uint64_t, 2> words{};
  pgas.read_bytes(slot,
                  std::span<std::uint8_t>(
                      reinterpret_cast<std::uint8_t*>(words.data()),
                      static_cast<std::size_t>(kSlotBytes)));
  KvApplyRecord rec;
  rec.at = acc.finish;
  rec.request = task.id;
  rec.key = req.key;
  rec.op = req.op;
  switch (req.op) {
    case KvOp::kGet:
      rec.found = words[0] != 0;
      rec.returned = rec.found ? words[1] : 0;
      break;
    case KvOp::kSet:
      rec.value = task.payload[1];
      words[0] = 1;
      words[1] = task.payload[1];
      break;
    case KvOp::kDelete:
      rec.found = words[0] != 0;
      words[0] = 0;
      words[1] = 0;
      break;
  }
  if (req.op != KvOp::kGet) {
    pgas.write_bytes(slot,
                     std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(words.data()),
                         static_cast<std::size_t>(kSlotBytes)));
  }
  apply_log_[owner].push_back(rec);
  ECO_TRACE_INSTANT(obs::Cat::kServe, serve_trace_names().apply,
                    (obs::Lane{static_cast<std::uint16_t>(owner),
                               static_cast<std::uint16_t>(who.worker)}),
                    acc.finish, task.id);

  KvResponse resp;
  resp.request = task.id;
  resp.key = req.key;
  resp.op = req.op;
  resp.found = rec.found;
  resp.value = (req.op == KvOp::kGet) ? rec.returned : rec.value;
  respond(owner, req.origin, resp, acc.finish);
}

void KvStore::on_shed(std::size_t owner, const Task& task, SimTime at) {
  const Decoded req = unpack_request(task.payload[0]);
  ++sheds_[owner];
  ECO_TRACE_INSTANT(obs::Cat::kServe, serve_trace_names().shed,
                    (obs::Lane{static_cast<std::uint16_t>(owner), 0}), at,
                    task.id);
  KvResponse resp;
  resp.request = task.id;
  resp.key = req.key;
  resp.op = req.op;
  resp.shed = true;
  respond(owner, req.origin, resp, at);
}

void KvStore::respond(std::size_t owner, std::size_t origin, KvResponse resp,
                      SimTime depart) {
  if (!response_handler_) return;
  auto deliver = [this, origin, resp]() mutable {
    resp.completed = rt_.shard(origin).now();
    response_handler_(origin, resp);
  };
  if (origin == owner) {
    rt_.shard(owner).schedule_at(depart, std::move(deliver));
  } else {
    // Cross-node reply: departs the owner at `depart`, pays the
    // inter-node head latency through the engine mailboxes.
    const SimTime now = rt_.shard(owner).now();
    rt_.post(owner, origin, depart - now, std::move(deliver));
  }
}

std::uint64_t KvStore::sheds() const {
  std::uint64_t total = 0;
  for (const std::uint64_t s : sheds_) total += s;
  return total;
}

std::uint64_t KvStore::apply_log_hash() const {
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  auto mix_word = [](std::uint64_t h, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= kFnvPrime;
    }
    return h;
  };
  // Per-node FNV streams folded with a balanced deterministic tree: the
  // result depends only on the logs' contents and the node count.
  return reduce_tree<std::uint64_t>(
      nodes_, kFnvOffset,
      [&](std::size_t n) {
        std::uint64_t h = kFnvOffset;
        for (const KvApplyRecord& r : apply_log_[n]) {
          h = mix_word(h, r.at);
          h = mix_word(h, r.request);
          h = mix_word(h, r.key);
          h = mix_word(h, static_cast<std::uint64_t>(r.op));
          h = mix_word(h, r.value);
          h = mix_word(h, r.found);
          h = mix_word(h, r.returned);
        }
        return h;
      },
      [&](std::uint64_t a, std::uint64_t b) { return mix_word(a, b); });
}

}  // namespace ecoscale::serve
