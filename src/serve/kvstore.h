// Partitioned key-value service over the UNIMEM PGAS (ROADMAP item 1).
//
// The memcached shape on an ECOSCALE machine: keys hash-partition across
// Compute Nodes and across Workers within each node, every key owning a
// fixed 16-byte slot in its home Worker's PGAS region. A request is a
// Task — GET/SET/DELETE packed into Task::payload — dispatched through
// ShardedRuntime::post_task, so it pays the inter-node head latency on
// the way in, queues at the owning Worker (per-node request queues), and
// rides the scheduler's request batching and admission control
// (RuntimeConfig::batch_size / admission_limit). Service cost is the KV
// kernel's software execution; the storage access itself is a timed
// PgasSystem load/store issued at completion, so cache hits, DRAM
// occupancy and (for misrouted accesses) interconnect time are all paid.
//
// Every mutable structure is shard-owned: the apply log and shed counter
// of node N are touched only by events executing on shard N, responses
// are delivered as origin-shard events, and the per-node logs fold into
// one fingerprint through a deterministic reduction tree — which is what
// keeps `--sim-threads N` byte-identical to 1.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "hls/ir.h"
#include "repart/repart.h"
#include "runtime/sharded.h"

namespace ecoscale::serve {

enum class KvOp : std::uint8_t { kGet = 0, kSet = 1, kDelete = 2 };

const char* kv_op_name(KvOp op);

struct KvConfig {
  /// Distinct keys; must fit the payload's 44-bit key field.
  std::uint64_t key_space = 1ull << 16;
  /// Bytes a GET reads / a SET writes at the owning worker (timed access
  /// size; the functional slot is fixed at 16 bytes: present + value).
  Bytes value_bytes = 64;
  /// Work items of the KV kernel per request — the CPU service cost.
  std::uint64_t service_items = 32;
  /// 0 (default): the legacy immutable hash partition. Nonzero: keys
  /// group into this many contiguous-range *blocks* — the items the
  /// online repartitioner migrates. Contiguity matters: a hash partition
  /// would smear any per-origin key-range affinity across every block and
  /// erase the locality signal the repartitioner follows. Every node
  /// allocates slot storage for the whole key space so a block can land
  /// anywhere; initial owners are contiguous (block * nodes / blocks).
  std::size_t repart_blocks = 0;
};

/// One applied operation, recorded at the owning node in apply order.
/// The per-key serialization order is the order of this log filtered to
/// the key (every key lives on exactly one worker and home-only
/// distribution keeps its requests on that worker's serial queue).
struct KvApplyRecord {
  SimTime at = 0;          // storage access finish at the owner
  TaskId request = 0;
  std::uint64_t key = 0;
  KvOp op = KvOp::kGet;
  std::uint64_t value = 0;     // SET: value stored
  bool found = false;          // GET/DELETE: key present before the op
  std::uint64_t returned = 0;  // GET: value read (0 if absent)
};

/// What the origin node hears back, delivered on the origin's shard.
struct KvResponse {
  TaskId request = 0;
  std::uint64_t key = 0;
  KvOp op = KvOp::kGet;
  bool shed = false;   // refused by admission control, not applied
  bool found = false;
  std::uint64_t value = 0;
  SimTime completed = 0;  // arrival time back at the origin
};

class KvStore : public repart::RepartClient {
 public:
  KvStore(ShardedRuntime& rt, KvConfig config);

  /// Invoked on the *origin* shard when a response (or shed notice)
  /// arrives. Safe to issue follow-on requests from inside.
  using ResponseHandler =
      std::function<void(std::size_t origin, const KvResponse&)>;
  void set_response_handler(ResponseHandler handler) {
    response_handler_ = std::move(handler);
  }

  /// Issue a request from node `origin`. Must be called either before
  /// ShardedRuntime::run() or from inside an action executing on shard
  /// `origin` (the cross-node hop is a post_task from that shard).
  /// `request` must be nonzero and unique.
  void issue(std::size_t origin, KvOp op, std::uint64_t key,
             std::uint64_t value, TaskId request);

  /// Current owning node. In block mode this follows the repartitioner's
  /// live owner table (written only at epoch pauses, so reads from shard
  /// events are race-free and stable within an engine segment).
  std::size_t owner_of(std::uint64_t key) const {
    if (config_.repart_blocks == 0) return owner_node_of_key_[key];
    return block_owner(block_of(key));
  }
  const KvConfig& config() const { return config_; }
  const KernelIR& kernel() const { return kernel_; }

  // --- Block mode (config().repart_blocks > 0) ---------------------------
  std::size_t block_count() const { return config_.repart_blocks; }
  std::uint32_t block_of(std::uint64_t key) const {
    return static_cast<std::uint32_t>(key * config_.repart_blocks /
                                      config_.key_space);
  }
  std::size_t block_owner(std::uint32_t block) const {
    return repart_ != nullptr ? repart_->owner(block)
                              : static_block_owner_[block];
  }
  /// The canonical initial placement (contiguous key ranges) — construct
  /// the Repartitioner with this.
  std::vector<std::uint32_t> initial_block_owners() const {
    return static_block_owner_;
  }
  /// Wire the store to its repartitioner: the store becomes the
  /// RepartClient (block migration), issues record into the tracker
  /// *issue-side at the origin* — so a crashed owner's blocks keep
  /// accruing offered load while its believed-alive capacity collapses,
  /// which is what lets diffusion drain a dead node — and owner lookups
  /// follow the live table.
  void attach_repartitioner(repart::Repartitioner* rp);

  // RepartClient: bytes that travel when a block migrates, and the
  // migration itself (functional slot copy + timed PGAS block DMA at both
  // ends + a unimem.block_move span). Runs at an epoch pause.
  std::uint64_t item_bytes(std::uint32_t block) const override;
  void migrate_item(std::uint32_t block, std::uint32_t from, std::uint32_t to,
                    SimTime at) override;

  /// Cross-node traffic accounting (block mode), reduction-tree folded.
  struct CrossStats {
    std::uint64_t remote_issues = 0;  // requests issued to a remote owner
    std::uint64_t forwards = 0;       // stale-owner re-homes in flight
    std::uint64_t byte_hops = 0;      // request+reply+forward value bytes x hops
  };
  CrossStats cross_stats() const;

  const std::vector<KvApplyRecord>& apply_log(std::size_t node) const {
    return apply_log_[node];
  }
  /// Admission-control sheds observed by this store, all nodes.
  std::uint64_t sheds() const;
  /// Deterministic fingerprint of every node's apply log (reduction-tree
  /// fold of per-node FNV hashes): the serve determinism gates compare
  /// this across --sim-threads settings.
  std::uint64_t apply_log_hash() const;

 private:
  void on_complete(std::size_t owner, const Task& task,
                   const TaskResult& result);
  void on_shed(std::size_t owner, const Task& task, SimTime at);
  /// Send `resp` back to `origin`, departing the owner at `depart`.
  void respond(std::size_t owner, std::size_t origin, KvResponse resp,
               SimTime depart);
  /// First key of `block` and the key count (contiguous ranges).
  std::uint64_t block_first(std::uint32_t block) const;
  std::uint64_t block_keys(std::uint32_t block) const;

  ShardedRuntime& rt_;
  KvConfig config_;
  KernelIR kernel_;
  std::size_t nodes_ = 0;
  /// Host-side partition tables, immutable after construction.
  std::vector<std::uint32_t> owner_node_of_key_;
  std::vector<std::uint64_t> slot_addr_of_key_;  // raw GlobalAddress
  /// Block mode: per-node slot tables ([node][key], raw GlobalAddress —
  /// every node can host any block) and the static placement used when no
  /// repartitioner is attached.
  std::vector<std::vector<std::uint64_t>> block_slot_addr_;
  std::vector<std::uint32_t> static_block_owner_;
  repart::Repartitioner* repart_ = nullptr;
  /// Shard-owned: index N is written only by events on shard N.
  std::vector<std::vector<KvApplyRecord>> apply_log_;
  std::vector<std::uint64_t> sheds_;
  std::vector<std::uint64_t> remote_issues_;
  std::vector<std::uint64_t> forwards_;
  std::vector<std::uint64_t> byte_hops_;
  ResponseHandler response_handler_;
};

/// The KV request kernel (integer compare/hash mix, CPU-bound service).
KernelIR make_kv_kernel();

}  // namespace ecoscale::serve
