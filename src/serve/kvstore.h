// Partitioned key-value service over the UNIMEM PGAS (ROADMAP item 1).
//
// The memcached shape on an ECOSCALE machine: keys hash-partition across
// Compute Nodes and across Workers within each node, every key owning a
// fixed 16-byte slot in its home Worker's PGAS region. A request is a
// Task — GET/SET/DELETE packed into Task::payload — dispatched through
// ShardedRuntime::post_task, so it pays the inter-node head latency on
// the way in, queues at the owning Worker (per-node request queues), and
// rides the scheduler's request batching and admission control
// (RuntimeConfig::batch_size / admission_limit). Service cost is the KV
// kernel's software execution; the storage access itself is a timed
// PgasSystem load/store issued at completion, so cache hits, DRAM
// occupancy and (for misrouted accesses) interconnect time are all paid.
//
// Every mutable structure is shard-owned: the apply log and shed counter
// of node N are touched only by events executing on shard N, responses
// are delivered as origin-shard events, and the per-node logs fold into
// one fingerprint through a deterministic reduction tree — which is what
// keeps `--sim-threads N` byte-identical to 1.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "hls/ir.h"
#include "runtime/sharded.h"

namespace ecoscale::serve {

enum class KvOp : std::uint8_t { kGet = 0, kSet = 1, kDelete = 2 };

const char* kv_op_name(KvOp op);

struct KvConfig {
  /// Distinct keys; must fit the payload's 44-bit key field.
  std::uint64_t key_space = 1ull << 16;
  /// Bytes a GET reads / a SET writes at the owning worker (timed access
  /// size; the functional slot is fixed at 16 bytes: present + value).
  Bytes value_bytes = 64;
  /// Work items of the KV kernel per request — the CPU service cost.
  std::uint64_t service_items = 32;
};

/// One applied operation, recorded at the owning node in apply order.
/// The per-key serialization order is the order of this log filtered to
/// the key (every key lives on exactly one worker and home-only
/// distribution keeps its requests on that worker's serial queue).
struct KvApplyRecord {
  SimTime at = 0;          // storage access finish at the owner
  TaskId request = 0;
  std::uint64_t key = 0;
  KvOp op = KvOp::kGet;
  std::uint64_t value = 0;     // SET: value stored
  bool found = false;          // GET/DELETE: key present before the op
  std::uint64_t returned = 0;  // GET: value read (0 if absent)
};

/// What the origin node hears back, delivered on the origin's shard.
struct KvResponse {
  TaskId request = 0;
  std::uint64_t key = 0;
  KvOp op = KvOp::kGet;
  bool shed = false;   // refused by admission control, not applied
  bool found = false;
  std::uint64_t value = 0;
  SimTime completed = 0;  // arrival time back at the origin
};

class KvStore {
 public:
  KvStore(ShardedRuntime& rt, KvConfig config);

  /// Invoked on the *origin* shard when a response (or shed notice)
  /// arrives. Safe to issue follow-on requests from inside.
  using ResponseHandler =
      std::function<void(std::size_t origin, const KvResponse&)>;
  void set_response_handler(ResponseHandler handler) {
    response_handler_ = std::move(handler);
  }

  /// Issue a request from node `origin`. Must be called either before
  /// ShardedRuntime::run() or from inside an action executing on shard
  /// `origin` (the cross-node hop is a post_task from that shard).
  /// `request` must be nonzero and unique.
  void issue(std::size_t origin, KvOp op, std::uint64_t key,
             std::uint64_t value, TaskId request);

  std::size_t owner_of(std::uint64_t key) const {
    return owner_node_of_key_[key];
  }
  const KvConfig& config() const { return config_; }
  const KernelIR& kernel() const { return kernel_; }

  const std::vector<KvApplyRecord>& apply_log(std::size_t node) const {
    return apply_log_[node];
  }
  /// Admission-control sheds observed by this store, all nodes.
  std::uint64_t sheds() const;
  /// Deterministic fingerprint of every node's apply log (reduction-tree
  /// fold of per-node FNV hashes): the serve determinism gates compare
  /// this across --sim-threads settings.
  std::uint64_t apply_log_hash() const;

 private:
  void on_complete(std::size_t owner, const Task& task,
                   const TaskResult& result);
  void on_shed(std::size_t owner, const Task& task, SimTime at);
  /// Send `resp` back to `origin`, departing the owner at `depart`.
  void respond(std::size_t owner, std::size_t origin, KvResponse resp,
               SimTime depart);

  ShardedRuntime& rt_;
  KvConfig config_;
  KernelIR kernel_;
  std::size_t nodes_ = 0;
  /// Host-side partition tables, immutable after construction.
  std::vector<std::uint32_t> owner_node_of_key_;
  std::vector<std::uint64_t> slot_addr_of_key_;  // raw GlobalAddress
  /// Shard-owned: index N is written only by events on shard N.
  std::vector<std::vector<KvApplyRecord>> apply_log_;
  std::vector<std::uint64_t> sheds_;
  ResponseHandler response_handler_;
};

/// The KV request kernel (integer compare/hash mix, CPU-bound service).
KernelIR make_kv_kernel();

}  // namespace ecoscale::serve
