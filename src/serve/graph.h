// GAP-style graph analytics over the global address space.
//
// A CSR graph is laid out in UNIMEM: vertices block-partition into
// contiguous ranges, one per Worker, and each Worker's range owns two
// PGAS regions in its node's memory — the vertex-value array and the
// adjacency slice. The engine runs level-synchronous pull algorithms
// (BFS, PageRank, connected components): every iteration, each Worker
// sweeps its vertices, streams its local adjacency, and reads neighbour
// values with timed PgasSystem::load — a neighbour owned by another
// Compute Node pays the full interconnect path, which is where the
// remote-edge fraction and byte-hops numbers come from. Per-Worker
// sim-time cursors advance through the accesses (the timed-PGAS idiom of
// bench_unimem_coherence); the iteration barrier and every convergence
// test (frontier count, rank delta, label changes) fold per-Worker
// partials with common/reduce.h reduction trees, so results and timing
// are pure functions of the graph and the machine.
//
// Algorithm updates are double-buffered (PageRank, CC) or monotonic with
// a level predicate (BFS), so the sweep order inside an iteration can
// never change the functional result — reference implementations in this
// header give tests an oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "runtime/machine.h"

namespace ecoscale::serve {

struct CsrGraph {
  std::size_t vertices = 0;
  std::vector<std::uint64_t> row;  // vertices + 1 offsets
  std::vector<std::uint32_t> col;  // neighbour lists, sorted per vertex
  std::size_t edges() const { return col.size(); }
};

/// Deterministic synthetic graph: out-degrees ~ bounded Poisson around
/// avg_degree, endpoints Zipf-skewed (skew > 0 concentrates edges on hub
/// vertices), then symmetrized and deduplicated — undirected, so BFS and
/// CC references are straightforward.
CsrGraph make_skewed_graph(std::size_t vertices, double avg_degree,
                           double skew, std::uint64_t seed);

inline constexpr std::uint32_t kUnreached = ~std::uint32_t{0};

struct GraphStats {
  std::size_t iterations = 0;
  SimTime time = 0;               // sim-time of the final barrier
  std::uint64_t edge_reads = 0;   // neighbour-value loads issued
  std::uint64_t remote_edge_reads = 0;
  std::uint64_t byte_hops = 0;    // interconnect byte-hops over the run
  double remote_fraction() const {
    return edge_reads == 0 ? 0.0
                           : static_cast<double>(remote_edge_reads) /
                                 static_cast<double>(edge_reads);
  }
};

struct BfsResult {
  std::vector<std::uint32_t> dist;  // kUnreached if not reachable
  GraphStats stats;
};
struct PagerankResult {
  std::vector<double> rank;
  GraphStats stats;
};
struct CcResult {
  std::vector<std::uint32_t> label;  // min reachable vertex id
  GraphStats stats;
};

class GraphEngine {
 public:
  /// Lays the graph out in `machine`'s PGAS. The machine should be a
  /// multi-node one (this engine drives PgasSystem directly; it does not
  /// use a Simulator or the task scheduler).
  GraphEngine(Machine& machine, const CsrGraph& graph);

  BfsResult bfs(std::uint32_t source);
  PagerankResult pagerank(std::size_t iterations, double damping = 0.85);
  /// Min-label propagation until a fixpoint.
  CcResult connected_components();

  std::size_t worker_count() const { return owners_.empty() ? 0 : workers_; }

 private:
  /// Contiguous vertex range of flat worker `w`.
  std::size_t range_begin(std::size_t w) const {
    return (graph_->vertices * w) / workers_;
  }
  std::size_t range_end(std::size_t w) const {
    return (graph_->vertices * (w + 1)) / workers_;
  }
  GlobalAddress value_addr(std::size_t buffer, std::uint32_t v) const;
  std::uint64_t read_value(std::size_t buffer, std::uint32_t v) const;
  void write_value(std::size_t buffer, std::uint32_t v, std::uint64_t x);
  /// Fill buffer `buffer` with `x` for every vertex.
  void fill_values(std::size_t buffer, std::uint64_t x);
  /// Reduction-tree max over per-worker cursors; aligns every cursor to
  /// the barrier and prunes the machine's retired calendars.
  SimTime barrier();

  Machine& machine_;
  const CsrGraph* graph_ = nullptr;
  std::size_t workers_ = 0;
  std::vector<std::uint32_t> owners_;        // vertex -> flat worker
  std::vector<std::uint64_t> value_base_[2]; // per worker, raw address
  std::vector<std::uint64_t> adj_base_;      // per worker, raw address
  std::vector<SimTime> cursors_;             // per worker
  GraphStats run_;  // accumulated by the sweep helpers of the current run
};

/// Single-threaded functional references (no machine, no timing).
std::vector<std::uint32_t> reference_bfs(const CsrGraph& g,
                                         std::uint32_t source);
std::vector<double> reference_pagerank(const CsrGraph& g,
                                       std::size_t iterations,
                                       double damping = 0.85);
std::vector<std::uint32_t> reference_cc(const CsrGraph& g);

}  // namespace ecoscale::serve
