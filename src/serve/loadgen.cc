#include "serve/loadgen.h"

#include <algorithm>

#include "common/check.h"
#include "common/reduce.h"
#include "obs/trace.h"

namespace ecoscale::serve {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct LoadTraceNames {
  CounterId request = CounterRegistry::intern("serve.request");
};
[[maybe_unused]] const LoadTraceNames& load_trace_names() {
  static const LoadTraceNames names;
  return names;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_word(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

LoadGen::LoadGen(ShardedRuntime& rt, KvStore& kv, LoadGenConfig config)
    : rt_(rt),
      kv_(kv),
      config_(config),
      zipf_(static_cast<std::size_t>(kv.config().key_space),
            config.zipf_skew),
      origins_(rt.node_count()) {
  ECO_CHECK(config_.get_fraction >= 0.0 && config_.delete_fraction >= 0.0 &&
            config_.get_fraction + config_.delete_fraction <= 1.0);
  for (std::size_t n = 0; n < origins_.size(); ++n) {
    origins_[n].rng.reseed(config_.seed + 0x9e37 * (n + 1));
    origins_[n].issue_time.reserve(budget_per_node());
  }
  kv_.set_response_handler(
      [this](std::size_t origin, const KvResponse& resp) {
        on_response(origin, resp);
      });
}

void LoadGen::start() {
  const std::size_t nodes = origins_.size();
  for (std::size_t n = 0; n < nodes; ++n) {
    if (budget_per_node() == 0) continue;
    if (config_.mode == LoadGenConfig::Mode::kOpenLoop) {
      ECO_CHECK_MSG(config_.offered_load > 0.0,
                    "open loop needs a positive offered load");
      // Stagger origins so the very first arrivals do not align.
      const SimTime t0 = 1 + static_cast<SimTime>(n) * 17;
      rt_.shard(n).schedule_at(t0, [this, n] { arrival(n); });
    } else {
      const std::size_t clients =
          std::min(config_.clients_per_node, budget_per_node());
      for (std::size_t c = 0; c < clients; ++c) {
        const SimTime t0 = 1 + static_cast<SimTime>(n) * 17 +
                           static_cast<SimTime>(c) * 29;
        rt_.shard(n).schedule_at(t0, [this, n] { issue_one(n); });
      }
    }
  }
}

void LoadGen::issue_one(std::size_t origin) {
  Origin& o = origins_[origin];
  if (o.issued >= budget_per_node()) return;
  const std::size_t seq = o.issued++;
  // Globally unique, nonzero request id: per-origin stride.
  const TaskId request =
      1 + static_cast<TaskId>(seq) * origins_.size() + origin;

  // Zipf rank -> key through a hash scatter so the hot ranks are spread
  // across owners instead of clustering on low key ids. Affine draws
  // scatter within the origin's current phase window instead.
  const std::uint64_t rank = zipf_(o.rng);
  std::uint64_t key = mix64(rank) % kv_.config().key_space;
  if (config_.origin_affinity > 0.0 &&
      o.rng.uniform() < config_.origin_affinity) {
    const std::uint64_t nodes = origins_.size();
    const std::uint64_t window =
        std::max<std::uint64_t>(kv_.config().key_space / nodes, 1);
    const std::uint64_t phase =
        config_.phase_period > 0
            ? static_cast<std::uint64_t>(rt_.shard(origin).now()) /
                  config_.phase_period
            : 0;
    const std::uint64_t base = ((origin + phase) % nodes) * window;
    key = base + mix64(rank) % window;
  }
  const double r = o.rng.uniform();
  KvOp op = KvOp::kSet;
  if (r < config_.get_fraction) {
    op = KvOp::kGet;
  } else if (r < config_.get_fraction + config_.delete_fraction) {
    op = KvOp::kDelete;
  }
  const std::uint64_t value = mix64(request);

  o.issue_time.push_back(rt_.shard(origin).now());
  kv_.issue(origin, op, key, value, request);
}

void LoadGen::arrival(std::size_t origin) {
  Origin& o = origins_[origin];
  // Bursty open loop: each arrival instant may carry extra requests.
  std::uint64_t batch = 1;
  if (config_.burst_mean > 0.0) {
    batch += o.rng.bounded_poisson(config_.burst_mean, config_.burst_cap);
  }
  for (std::uint64_t i = 0; i < batch && o.issued < budget_per_node(); ++i) {
    issue_one(origin);
  }
  if (o.issued >= budget_per_node()) return;
  const double per_origin_rate =
      config_.offered_load / static_cast<double>(origins_.size());
  const double gap_seconds = o.rng.exponential(1.0 / per_origin_rate);
  const auto gap =
      std::max<SimDuration>(1, static_cast<SimDuration>(gap_seconds * 1e12));
  rt_.shard(origin).schedule_after(gap, [this, origin] { arrival(origin); });
}

void LoadGen::on_response(std::size_t origin, const KvResponse& resp) {
  Origin& o = origins_[origin];
  const std::size_t seq =
      static_cast<std::size_t>((resp.request - 1 - origin) / origins_.size());
  const SimTime issued_at = o.issue_time[seq];
  o.last_completion = std::max(o.last_completion, resp.completed);
  if (resp.shed) {
    ++o.shed;
  } else {
    ++o.completed;
    o.latency.record(static_cast<std::uint64_t>(resp.completed - issued_at));
  }
  ECO_TRACE_SPAN(obs::Cat::kServe, load_trace_names().request,
                 (obs::Lane{static_cast<std::uint16_t>(origin),
                            static_cast<std::uint16_t>(resp.shed ? 1 : 0)}),
                 issued_at, resp.completed,
                 static_cast<std::uint32_t>(resp.request));
  if (config_.mode == LoadGenConfig::Mode::kClosedLoop &&
      o.issued < budget_per_node()) {
    // The answered client issues its next request after thinking.
    if (config_.think_time == 0) {
      issue_one(origin);
    } else {
      rt_.shard(origin).schedule_after(config_.think_time,
                                       [this, origin] { issue_one(origin); });
    }
  }
}

LoadGen::Report LoadGen::report() const {
  // Balanced-tree fold over origins: merged histogram, summed counters
  // and a combined fingerprint, all pure functions of per-origin state.
  struct Leaf {
    std::uint64_t issued = 0, completed = 0, shed = 0;
    LatencyHistogram latency;
    SimTime last_completion = 0;
    std::uint64_t hash = kFnvOffset;
  };
  Leaf folded = reduce_tree<Leaf>(
      origins_.size(), Leaf{},
      [&](std::size_t n) {
        const Origin& o = origins_[n];
        Leaf leaf;
        leaf.issued = o.issued;
        leaf.completed = o.completed;
        leaf.shed = o.shed;
        leaf.latency = o.latency;
        leaf.last_completion = o.last_completion;
        std::uint64_t h = kFnvOffset;
        h = fnv_word(h, o.latency.fingerprint());
        h = fnv_word(h, o.issued);
        h = fnv_word(h, o.completed);
        h = fnv_word(h, o.shed);
        h = fnv_word(h, static_cast<std::uint64_t>(o.last_completion));
        leaf.hash = h;
        return leaf;
      },
      [](Leaf a, const Leaf& b) {
        a.issued += b.issued;
        a.completed += b.completed;
        a.shed += b.shed;
        a.latency.merge(b.latency);
        a.last_completion = std::max(a.last_completion, b.last_completion);
        a.hash = fnv_word(a.hash, b.hash);
        return a;
      });
  Report report;
  report.issued = folded.issued;
  report.completed = folded.completed;
  report.shed = folded.shed;
  report.latency = folded.latency;
  report.last_completion = folded.last_completion;
  report.fingerprint = fnv_word(folded.hash, kv_.apply_log_hash());
  return report;
}

}  // namespace ecoscale::serve
