// Open- and closed-loop load generation for the KV service.
//
// Each origin node runs its own decorrelated Rng stream and issues
// requests with Zipfian key skew (common/rng.h ZipfSampler — one shared
// immutable CDF, per-origin streams):
//
//  * Open loop: Poisson arrivals at offered_load / nodes per origin,
//    optionally bursty (bounded-Poisson extra arrivals per instant).
//    Arrival times never depend on responses — the generator keeps
//    offering load while the service saturates, which is what makes the
//    throughput-vs-offered-load knee and the admission-control shed
//    count visible.
//  * Closed loop: clients_per_node clients per origin, each issuing its
//    next request (after think_time) when the previous one answers —
//    sheds answer too, so overload degrades, never livelocks.
//
// Latency is recorded at response delivery on the origin shard into a
// per-origin allocation-free histogram; report() folds origins with a
// deterministic reduction tree and fingerprints the result together with
// the store's apply log, giving the serve benches one hash to gate
// `--sim-threads N` against 1.
#pragma once

#include <cstdint>
#include <vector>

#include "common/latency.h"
#include "common/rng.h"
#include "common/units.h"
#include "serve/kvstore.h"

namespace ecoscale::serve {

struct LoadGenConfig {
  enum class Mode { kOpenLoop, kClosedLoop };
  Mode mode = Mode::kOpenLoop;

  /// Open loop: aggregate offered load (requests/second, whole machine)
  /// and the per-origin issue budget.
  double offered_load = 2e6;
  std::size_t requests_per_node = 2000;
  /// Open loop, optional bursts: mean extra same-instant arrivals
  /// (bounded Poisson, capped at burst_cap). 0 = pure Poisson process.
  double burst_mean = 0.0;
  std::uint64_t burst_cap = 8;

  /// Closed loop: concurrent clients per origin, requests each, think
  /// time between a response and the client's next request.
  std::size_t clients_per_node = 8;
  std::size_t requests_per_client = 200;
  SimDuration think_time = 0;

  /// Key popularity skew (0 = uniform) over the store's key space.
  double zipf_skew = 0.99;
  /// Phase-affine traffic (the repartitioning workload): with this
  /// probability a request's key is drawn from the origin's *affine
  /// window* — a contiguous key_space/nodes range, Zipf-ranked within and
  /// hash-scattered so hot keys spread over the window — instead of the
  /// global draw. 0 (default) is the legacy generator, bit-for-bit.
  double origin_affinity = 0.0;
  /// Affine windows rotate one node every phase_period of simulated time
  /// (origin o's window at phase p starts at ((o + p) % nodes) * window),
  /// so the traffic's home keeps shifting and a static partition decays.
  /// 0 = stationary windows.
  SimDuration phase_period = 0;
  /// Operation mix; the remainder after get + delete is SET.
  double get_fraction = 0.80;
  double delete_fraction = 0.02;
  std::uint64_t seed = 0xEC05CA1E;
};

class LoadGen {
 public:
  LoadGen(ShardedRuntime& rt, KvStore& kv, LoadGenConfig config);

  /// Arm the generators (schedules the first arrivals on every origin
  /// shard). Call once, before ShardedRuntime::run().
  void start();

  struct Report {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;  // answered, not shed
    std::uint64_t shed = 0;
    LatencyHistogram latency;     // successful requests, picoseconds
    SimTime last_completion = 0;
    /// Latency histograms + apply log + shed/issue counts, reduction-tree
    /// folded: the value serve determinism gates compare across
    /// --sim-threads settings.
    std::uint64_t fingerprint = 0;
  };
  Report report() const;

 private:
  struct Origin {
    Rng rng{0};
    std::size_t issued = 0;
    std::size_t completed = 0;
    std::size_t shed = 0;
    std::vector<SimTime> issue_time;  // by per-origin sequence number
    LatencyHistogram latency;
    SimTime last_completion = 0;
  };

  std::size_t budget_per_node() const {
    return config_.mode == LoadGenConfig::Mode::kOpenLoop
               ? config_.requests_per_node
               : config_.clients_per_node * config_.requests_per_client;
  }
  /// Issue one request from `origin` (must run on that shard).
  void issue_one(std::size_t origin);
  /// Open-loop arrival event: issue, then self-schedule the next gap.
  void arrival(std::size_t origin);
  void on_response(std::size_t origin, const KvResponse& resp);

  ShardedRuntime& rt_;
  KvStore& kv_;
  LoadGenConfig config_;
  ZipfSampler zipf_;           // immutable after construction
  std::vector<Origin> origins_;  // index N owned by shard N's events
};

}  // namespace ecoscale::serve
