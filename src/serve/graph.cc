#include "serve/graph.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <span>
#include <utility>

#include "common/check.h"
#include "common/reduce.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace ecoscale::serve {

namespace {

/// Fixed per-vertex bookkeeping cost of one sweep visit (index checks,
/// frontier predicate) — the cheap part; memory dominates by design.
constexpr SimDuration kVertexCost = nanoseconds(2);

constexpr Bytes kValueBytes = 8;
constexpr Bytes kEdgeBytes = 4;

struct GraphTraceNames {
  CounterId iter = CounterRegistry::intern("serve.graph.iter");
};
[[maybe_unused]] const GraphTraceNames& graph_trace_names() {
  static const GraphTraceNames names;
  return names;
}

std::uint64_t unreached_word() {
  return static_cast<std::uint64_t>(kUnreached);
}

}  // namespace

CsrGraph make_skewed_graph(std::size_t vertices, double avg_degree,
                           double skew, std::uint64_t seed) {
  ECO_CHECK(vertices >= 2);
  Rng rng(seed);
  ZipfSampler endpoint(vertices, skew);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(
      static_cast<double>(vertices) * avg_degree));
  const std::uint64_t degree_cap =
      8 + 4 * static_cast<std::uint64_t>(avg_degree);
  for (std::size_t v = 0; v < vertices; ++v) {
    const std::uint64_t deg = rng.bounded_poisson(avg_degree, degree_cap);
    for (std::uint64_t i = 0; i < deg; ++i) {
      const auto u = static_cast<std::uint32_t>(endpoint(rng));
      if (u == v) continue;
      edges.emplace_back(std::min<std::uint32_t>(v, u),
                         std::max<std::uint32_t>(v, u));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  CsrGraph g;
  g.vertices = vertices;
  g.row.assign(vertices + 1, 0);
  for (const auto& [a, b] : edges) {
    ++g.row[a + 1];
    ++g.row[b + 1];
  }
  for (std::size_t v = 0; v < vertices; ++v) g.row[v + 1] += g.row[v];
  g.col.resize(g.row[vertices]);
  std::vector<std::uint64_t> cursor(g.row.begin(), g.row.end() - 1);
  for (const auto& [a, b] : edges) {
    g.col[cursor[a]++] = b;
    g.col[cursor[b]++] = a;
  }
  // Neighbour lists come out sorted because the edge list is sorted per
  // endpoint `a` and symmetrized in a second ordered pass per `b`; sort
  // defensively anyway (cheap, and determinism leans on the order).
  for (std::size_t v = 0; v < vertices; ++v) {
    std::sort(g.col.begin() + static_cast<std::ptrdiff_t>(g.row[v]),
              g.col.begin() + static_cast<std::ptrdiff_t>(g.row[v + 1]));
  }
  return g;
}

GraphEngine::GraphEngine(Machine& machine, const CsrGraph& graph)
    : machine_(machine), graph_(&graph) {
  workers_ = machine_.worker_count();
  ECO_CHECK(workers_ >= 1);
  ECO_CHECK_MSG(graph.vertices >= workers_,
                "need at least one vertex per worker");
  const std::size_t per_node = machine_.workers_per_node();
  PgasSystem& pgas = machine_.pgas();

  owners_.resize(graph.vertices);
  for (std::size_t w = 0; w < workers_; ++w) {
    for (std::size_t v = range_begin(w); v < range_end(w); ++v) {
      owners_[v] = static_cast<std::uint32_t>(w);
    }
  }

  value_base_[0].resize(workers_);
  value_base_[1].resize(workers_);
  adj_base_.resize(workers_);
  cursors_.assign(workers_, 0);
  for (std::size_t w = 0; w < workers_; ++w) {
    const auto node = static_cast<NodeId>(w / per_node);
    const auto worker = static_cast<WorkerId>(w % per_node);
    const std::size_t vcount = range_end(w) - range_begin(w);
    const std::uint64_t ecount =
        graph.row[range_end(w)] - graph.row[range_begin(w)];
    value_base_[0][w] =
        pgas.alloc(node, worker, vcount * kValueBytes).raw();
    value_base_[1][w] =
        pgas.alloc(node, worker, vcount * kValueBytes).raw();
    if (ecount > 0) {
      const GlobalAddress adj =
          pgas.alloc(node, worker, ecount * kEdgeBytes);
      adj_base_[w] = adj.raw();
      const std::uint32_t* slice = graph.col.data() +
                                   graph.row[range_begin(w)];
      pgas.write_bytes(
          adj, std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(slice),
                   static_cast<std::size_t>(ecount * kEdgeBytes)));
    }
  }
}

GlobalAddress GraphEngine::value_addr(std::size_t buffer,
                                      std::uint32_t v) const {
  const std::uint32_t w = owners_[v];
  return GlobalAddress::from_raw(value_base_[buffer][w]) +
         (v - range_begin(w)) * kValueBytes;
}

std::uint64_t GraphEngine::read_value(std::size_t buffer,
                                      std::uint32_t v) const {
  std::uint64_t word = 0;
  machine_.pgas().read_bytes(
      value_addr(buffer, v),
      std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&word),
                              sizeof word));
  return word;
}

void GraphEngine::write_value(std::size_t buffer, std::uint32_t v,
                              std::uint64_t x) {
  machine_.pgas().write_bytes(
      value_addr(buffer, v),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(&x), sizeof x));
}

void GraphEngine::fill_values(std::size_t buffer, std::uint64_t x) {
  for (std::size_t v = 0; v < graph_->vertices; ++v) {
    write_value(buffer, static_cast<std::uint32_t>(v), x);
  }
}

SimTime GraphEngine::barrier() {
  const SimTime at = reduce_tree<SimTime>(
      workers_, 0, [&](std::size_t w) { return cursors_[w]; },
      [](SimTime a, SimTime b) { return std::max(a, b); });
  for (auto& c : cursors_) c = at;
  machine_.release(at);
  return at;
}

BfsResult GraphEngine::bfs(std::uint32_t source) {
  ECO_CHECK(source < graph_->vertices);
  PgasSystem& pgas = machine_.pgas();
  const CsrGraph& g = *graph_;
  run_ = GraphStats{};
  const std::uint64_t hops_before = pgas.network().byte_hops();
  const SimTime start = barrier();

  fill_values(0, unreached_word());
  write_value(0, source, 0);

  std::vector<std::uint64_t> frontier(workers_, 0);
  for (std::uint64_t level = 1;; ++level) {
    const SimTime iter_start = barrier();
    for (std::size_t w = 0; w < workers_; ++w) {
      const WorkerCoord self = pgas.coord(w);
      SimTime cur = cursors_[w];
      std::uint64_t found = 0;
      for (std::size_t v = range_begin(w); v < range_end(w); ++v) {
        cur += kVertexCost;
        const auto vv = static_cast<std::uint32_t>(v);
        if (read_value(0, vv) != unreached_word()) continue;
        const std::uint64_t deg = g.row[v + 1] - g.row[v];
        if (deg == 0) continue;
        // Stream the local adjacency slice (one bulk read), then pull
        // each neighbour's level — remote neighbours pay the wire.
        const GlobalAddress adj =
            GlobalAddress::from_raw(adj_base_[w]) +
            (g.row[v] - g.row[range_begin(w)]) * kEdgeBytes;
        cur = pgas.load(self, adj, deg * kEdgeBytes, cur).finish;
        bool hit = false;
        for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
          const std::uint32_t u = g.col[e];
          const MemAccess acc =
              pgas.load(self, value_addr(0, u), kValueBytes, cur);
          cur = acc.finish;
          ++run_.edge_reads;
          run_.remote_edge_reads += acc.remote;
          if (!hit && read_value(0, u) == level - 1) hit = true;
        }
        if (hit) {
          cur = pgas.store(self, value_addr(0, vv), kValueBytes, cur)
                    .finish;
          write_value(0, vv, level);
          ++found;
        }
      }
      cursors_[w] = cur;
      frontier[w] = found;
    }
    const SimTime iter_end = barrier();
    ECO_TRACE_SPAN(obs::Cat::kServe, graph_trace_names().iter,
                   (obs::Lane{0, 0}), iter_start, iter_end,
                   static_cast<std::uint32_t>(level));
    ++run_.iterations;
    const std::uint64_t advanced = reduce_tree<std::uint64_t>(
        workers_, 0, [&](std::size_t w) { return frontier[w]; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    if (advanced == 0) break;
  }

  BfsResult result;
  result.dist.resize(g.vertices);
  for (std::size_t v = 0; v < g.vertices; ++v) {
    result.dist[v] = static_cast<std::uint32_t>(
        read_value(0, static_cast<std::uint32_t>(v)));
  }
  run_.time = barrier() - start;
  run_.byte_hops = pgas.network().byte_hops() - hops_before;
  result.stats = run_;
  return result;
}

PagerankResult GraphEngine::pagerank(std::size_t iterations,
                                     double damping) {
  PgasSystem& pgas = machine_.pgas();
  const CsrGraph& g = *graph_;
  run_ = GraphStats{};
  const std::uint64_t hops_before = pgas.network().byte_hops();
  const SimTime start = barrier();

  const double n = static_cast<double>(g.vertices);
  fill_values(0, std::bit_cast<std::uint64_t>(1.0 / n));

  std::size_t cur_buf = 0;
  std::vector<double> delta(workers_, 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    const std::size_t next_buf = 1 - cur_buf;
    const SimTime iter_start = barrier();
    for (std::size_t w = 0; w < workers_; ++w) {
      const WorkerCoord self = pgas.coord(w);
      SimTime cur = cursors_[w];
      double d = 0.0;
      for (std::size_t v = range_begin(w); v < range_end(w); ++v) {
        cur += kVertexCost;
        const auto vv = static_cast<std::uint32_t>(v);
        double sum = 0.0;
        const std::uint64_t deg = g.row[v + 1] - g.row[v];
        if (deg > 0) {
          const GlobalAddress adj =
              GlobalAddress::from_raw(adj_base_[w]) +
              (g.row[v] - g.row[range_begin(w)]) * kEdgeBytes;
          cur = pgas.load(self, adj, deg * kEdgeBytes, cur).finish;
          for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
            const std::uint32_t u = g.col[e];
            const MemAccess acc =
                pgas.load(self, value_addr(cur_buf, u), kValueBytes, cur);
            cur = acc.finish;
            ++run_.edge_reads;
            run_.remote_edge_reads += acc.remote;
            const double ru =
                std::bit_cast<double>(read_value(cur_buf, u));
            const double udeg =
                static_cast<double>(g.row[u + 1] - g.row[u]);
            sum += ru / udeg;  // udeg >= 1: u has at least edge (u, v)
          }
        }
        const double next = (1.0 - damping) / n + damping * sum;
        cur = pgas.store(self, value_addr(next_buf, vv), kValueBytes, cur)
                  .finish;
        const double prev = std::bit_cast<double>(read_value(cur_buf, vv));
        d += std::abs(next - prev);
        write_value(next_buf, vv, std::bit_cast<std::uint64_t>(next));
      }
      cursors_[w] = cur;
      delta[w] = d;
    }
    const SimTime iter_end = barrier();
    ECO_TRACE_SPAN(obs::Cat::kServe, graph_trace_names().iter,
                   (obs::Lane{0, 1}), iter_start, iter_end,
                   static_cast<std::uint32_t>(it));
    ++run_.iterations;
    // Convergence signal, reduction-tree folded (deterministic rounding);
    // the iteration count is fixed so engine and reference stay in step,
    // but a fully-converged run can stop paying for sweeps.
    const double total_delta = reduce_tree<double>(
        workers_, 0.0, [&](std::size_t w) { return delta[w]; },
        [](double a, double b) { return a + b; });
    cur_buf = next_buf;
    if (total_delta == 0.0) break;
  }

  PagerankResult result;
  result.rank.resize(g.vertices);
  for (std::size_t v = 0; v < g.vertices; ++v) {
    result.rank[v] = std::bit_cast<double>(
        read_value(cur_buf, static_cast<std::uint32_t>(v)));
  }
  run_.time = barrier() - start;
  run_.byte_hops = pgas.network().byte_hops() - hops_before;
  result.stats = run_;
  return result;
}

CcResult GraphEngine::connected_components() {
  PgasSystem& pgas = machine_.pgas();
  const CsrGraph& g = *graph_;
  run_ = GraphStats{};
  const std::uint64_t hops_before = pgas.network().byte_hops();
  const SimTime start = barrier();

  for (std::size_t v = 0; v < g.vertices; ++v) {
    write_value(0, static_cast<std::uint32_t>(v), v);
  }

  std::size_t cur_buf = 0;
  std::vector<std::uint64_t> changed(workers_, 0);
  for (;;) {
    const std::size_t next_buf = 1 - cur_buf;
    const SimTime iter_start = barrier();
    for (std::size_t w = 0; w < workers_; ++w) {
      const WorkerCoord self = pgas.coord(w);
      SimTime cur = cursors_[w];
      std::uint64_t moved = 0;
      for (std::size_t v = range_begin(w); v < range_end(w); ++v) {
        cur += kVertexCost;
        const auto vv = static_cast<std::uint32_t>(v);
        std::uint64_t best = read_value(cur_buf, vv);
        const std::uint64_t deg = g.row[v + 1] - g.row[v];
        if (deg > 0) {
          const GlobalAddress adj =
              GlobalAddress::from_raw(adj_base_[w]) +
              (g.row[v] - g.row[range_begin(w)]) * kEdgeBytes;
          cur = pgas.load(self, adj, deg * kEdgeBytes, cur).finish;
          for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
            const std::uint32_t u = g.col[e];
            const MemAccess acc =
                pgas.load(self, value_addr(cur_buf, u), kValueBytes, cur);
            cur = acc.finish;
            ++run_.edge_reads;
            run_.remote_edge_reads += acc.remote;
            best = std::min(best, read_value(cur_buf, u));
          }
        }
        if (best != read_value(cur_buf, vv)) ++moved;
        cur = pgas.store(self, value_addr(next_buf, vv), kValueBytes, cur)
                  .finish;
        write_value(next_buf, vv, best);
      }
      cursors_[w] = cur;
      changed[w] = moved;
    }
    const SimTime iter_end = barrier();
    ECO_TRACE_SPAN(obs::Cat::kServe, graph_trace_names().iter,
                   (obs::Lane{0, 2}), iter_start, iter_end,
                   static_cast<std::uint32_t>(run_.iterations));
    ++run_.iterations;
    const std::uint64_t total_changed = reduce_tree<std::uint64_t>(
        workers_, 0, [&](std::size_t w) { return changed[w]; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    cur_buf = next_buf;
    if (total_changed == 0) break;
  }

  CcResult result;
  result.label.resize(g.vertices);
  for (std::size_t v = 0; v < g.vertices; ++v) {
    result.label[v] = static_cast<std::uint32_t>(
        read_value(cur_buf, static_cast<std::uint32_t>(v)));
  }
  run_.time = barrier() - start;
  run_.byte_hops = pgas.network().byte_hops() - hops_before;
  result.stats = run_;
  return result;
}

// --- functional references --------------------------------------------------

std::vector<std::uint32_t> reference_bfs(const CsrGraph& g,
                                         std::uint32_t source) {
  std::vector<std::uint32_t> dist(g.vertices, kUnreached);
  std::deque<std::uint32_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
      const std::uint32_t u = g.col[e];
      if (dist[u] != kUnreached) continue;
      dist[u] = dist[v] + 1;
      queue.push_back(u);
    }
  }
  return dist;
}

std::vector<double> reference_pagerank(const CsrGraph& g,
                                       std::size_t iterations,
                                       double damping) {
  const double n = static_cast<double>(g.vertices);
  std::vector<double> rank(g.vertices, 1.0 / n);
  std::vector<double> next(g.vertices, 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    double delta = 0.0;
    for (std::size_t v = 0; v < g.vertices; ++v) {
      double sum = 0.0;
      for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
        const std::uint32_t u = g.col[e];
        sum += rank[u] / static_cast<double>(g.row[u + 1] - g.row[u]);
      }
      next[v] = (1.0 - damping) / n + damping * sum;
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta == 0.0) break;
  }
  return rank;
}

std::vector<std::uint32_t> reference_cc(const CsrGraph& g) {
  std::vector<std::uint32_t> label(g.vertices, kUnreached);
  std::deque<std::uint32_t> queue;
  for (std::size_t s = 0; s < g.vertices; ++s) {
    if (label[s] != kUnreached) continue;
    // `s` is the smallest unvisited vertex, hence its component's min id.
    label[s] = static_cast<std::uint32_t>(s);
    queue.push_back(static_cast<std::uint32_t>(s));
    while (!queue.empty()) {
      const std::uint32_t v = queue.front();
      queue.pop_front();
      for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
        const std::uint32_t u = g.col[e];
        if (label[u] != kUnreached) continue;
        label[u] = static_cast<std::uint32_t>(s);
        queue.push_back(u);
      }
    }
  }
  return label;
}

}  // namespace ecoscale::serve
