// Tail-latency reporting over common/latency.h histograms.
//
// Load generators record per-request sim-time latencies (picoseconds)
// into per-origin LatencyHistograms; this header is the reporting edge:
// merge, summarize to the p50/p99/p999 numbers the serve benches print,
// and derive goodput from the completion span.
#pragma once

#include <cstdint>

#include "common/latency.h"
#include "common/units.h"

namespace ecoscale::serve {

struct TailSummary {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
};

/// Percentiles of a histogram recorded in picoseconds, reported in
/// nanoseconds (quantile resolution is relative, so the unit conversion
/// loses nothing beyond the histogram's own 2^-kSubBits rounding).
inline TailSummary summarize(const LatencyHistogram& h) {
  TailSummary s;
  s.count = h.count();
  s.mean_ns = h.mean() / 1e3;
  s.p50_ns = static_cast<double>(h.percentile(50.0)) / 1e3;
  s.p99_ns = static_cast<double>(h.percentile(99.0)) / 1e3;
  s.p999_ns = static_cast<double>(h.percentile(99.9)) / 1e3;
  s.max_ns = static_cast<double>(h.max()) / 1e3;
  return s;
}

/// Completed requests per second over a sim-time span.
inline double goodput_per_sec(std::uint64_t completed, SimTime span) {
  if (span == 0) return 0.0;
  return static_cast<double>(completed) /
         (static_cast<double>(span) / 1e12);
}

}  // namespace ecoscale::serve
