// Single-producer / single-consumer mailbox for cross-shard events.
//
// The sharded parallel engine gives every ordered shard pair (from, to) one
// mailbox. During a synchronization window only the thread running shard
// `from` pushes into it; messages are drained at the window barrier (by the
// merge thread) and converted into ordinary events on the destination
// shard's queue. The ring is a power-of-two array with acquire/release
// head/tail indices — the classic wait-free SPSC queue — so a drain could
// even overlap the producer's window without a data race, although the
// engine only drains at barriers.
//
// Capacity is fixed after construction. A burst larger than the ring spills
// into a producer-owned overflow vector: once a window overflows, every
// later push of that window goes to the overflow too, so FIFO order is
// preserved (ring first, then overflow — and the drain happens before the
// producer can push again). Spills are counted; steady state should be
// allocation-free with a well-sized ring.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/inline_action.h"

namespace ecoscale {

/// One cross-shard event in flight: deliver `action` on the destination
/// shard at absolute sim time `time`. `seq` is the producer-side send
/// counter of this mailbox — the third key of the canonical merge order
/// (time, source shard, seq).
struct ShardMessage {
  SimTime time = 0;
  std::uint64_t seq = 0;
  InlineAction action;
};

class SpscMailbox {
 public:
  explicit SpscMailbox(std::size_t capacity = 1024) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  // The ring indices are atomics; moving a mailbox after threads saw it
  // would be a bug, so mailboxes are built once and pinned.
  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  /// Producer side. Assigns and returns the message's send sequence
  /// number. Falls back to the overflow vector when the ring is full (or
  /// once anything is already waiting there, to keep FIFO order).
  template <typename F>
  std::uint64_t push(SimTime time, F&& action) {
    const std::uint64_t seq = next_seq_++;
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (!overflow_.empty() || tail - head > mask_) {
      ++overflow_spills_;
      overflow_.push_back(
          ShardMessage{time, seq, InlineAction(std::forward<F>(action))});
      return seq;
    }
    ShardMessage& slot = ring_[static_cast<std::size_t>(tail) & mask_];
    slot.time = time;
    slot.seq = seq;
    slot.action.emplace(std::forward<F>(action));
    tail_.store(tail + 1, std::memory_order_release);
    return seq;
  }

  /// Consumer side: move every pending message into `out` (appended) in
  /// send order. Called at window barriers; the producer is quiescent by
  /// then, so the overflow vector is safe to steal as well.
  void drain(std::vector<ShardMessage>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    while (head != tail) {
      ShardMessage& slot = ring_[static_cast<std::size_t>(head) & mask_];
      out.push_back(std::move(slot));
      slot.action.reset();
      ++head;
    }
    head_.store(head, std::memory_order_release);
    if (!overflow_.empty()) {
      for (ShardMessage& m : overflow_) out.push_back(std::move(m));
      overflow_.clear();
    }
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           overflow_.empty();
  }

  std::size_t capacity() const { return mask_ + 1; }
  /// Messages ever routed through this mailbox.
  std::uint64_t total_messages() const { return next_seq_; }
  /// Messages that missed the ring and took the overflow vector.
  std::uint64_t overflow_spills() const { return overflow_spills_; }

 private:
  std::vector<ShardMessage> ring_;
  std::size_t mask_ = 0;
  // Producer-owned (no concurrent access by contract):
  std::uint64_t next_seq_ = 0;
  std::uint64_t overflow_spills_ = 0;
  std::vector<ShardMessage> overflow_;
  // Shared SPSC cursors:
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer
};

}  // namespace ecoscale
