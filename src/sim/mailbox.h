// Single-producer / single-consumer lanes for cross-shard events.
//
// The sharded parallel engine used to give every ordered shard pair
// (from, to) its own mailbox — shards² heap-allocated rings, ~34 MB of
// pointerchasing state at 64 shards and unusable at the 6k+ shards a
// 100k-worker machine wants. Lanes consolidate that to one ring per
// *worker thread* (DESIGN.md §7.7): a shard's thread owns exactly one lane
// for the whole window, every message it posts — whatever the destination —
// goes into that lane, and the message itself carries the full merge key
// (time, source shard, destination shard, per-source sequence). The lane is
// still SPSC by construction: only the owning thread pushes during a
// window, and the merge thread drains at the barrier when all producers
// are quiescent. The ring is a power-of-two array with acquire/release
// head/tail indices — the classic wait-free SPSC queue — so a drain could
// even overlap the producer's window without a data race, although the
// engine only drains at barriers.
//
// Capacity is fixed after construction. A burst larger than the ring spills
// into a producer-owned overflow vector: once a window overflows, every
// later push of that window goes to the overflow too, so FIFO order is
// preserved (ring first, then overflow — and the drain happens before the
// producer can push again). Spills are counted; steady state should be
// allocation-free with a well-sized ring. Note spill *counts* depend on how
// many shards share a lane and are therefore a wall-clock-side metric that
// varies with the thread count; simulation results never do.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/inline_action.h"

namespace ecoscale {

/// One cross-shard event in flight: deliver `action` on shard `dst` at
/// absolute sim time `time`. `src` and `seq` (the source shard's running
/// send counter) complete the canonical merge key — lanes are shared by
/// many shard pairs, so every message is self-describing.
struct ShardMessage {
  SimTime time = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t seq = 0;
  InlineAction action;
};

class ShardLane {
 public:
  explicit ShardLane(std::size_t capacity = 1024) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  // The ring indices are atomics; moving a lane after threads saw it would
  // be a bug, so lanes are built once and pinned.
  ShardLane(const ShardLane&) = delete;
  ShardLane& operator=(const ShardLane&) = delete;

  /// Producer side (the lane-owning thread only). The caller supplies the
  /// full merge key; the lane never orders, only buffers. Falls back to
  /// the overflow vector when the ring is full (or once anything is
  /// already waiting there, to keep FIFO order).
  template <typename F>
  void push(SimTime time, std::uint32_t src, std::uint32_t dst,
            std::uint64_t seq, F&& action) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (!overflow_.empty() || tail - head > mask_) {
      ++overflow_spills_;
      overflow_.push_back(ShardMessage{time, src, dst, seq,
                                       InlineAction(std::forward<F>(action))});
      return;
    }
    ShardMessage& slot = ring_[static_cast<std::size_t>(tail) & mask_];
    slot.time = time;
    slot.src = src;
    slot.dst = dst;
    slot.seq = seq;
    slot.action.emplace(std::forward<F>(action));
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Consumer side: move every pending message into `out` (appended) in
  /// push order. Called at window barriers; the producer is quiescent by
  /// then, so the overflow vector is safe to steal as well.
  void drain(std::vector<ShardMessage>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    while (head != tail) {
      ShardMessage& slot = ring_[static_cast<std::size_t>(head) & mask_];
      out.push_back(std::move(slot));
      slot.action.reset();
      ++head;
    }
    head_.store(head, std::memory_order_release);
    if (!overflow_.empty()) {
      for (ShardMessage& m : overflow_) out.push_back(std::move(m));
      overflow_.clear();
    }
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           overflow_.empty();
  }

  /// The engine pre-reserves its per-lane drain and merge scratch from
  /// this at run() entry, so a drain of a non-overflowed window never
  /// reallocates (the sim_alloc_test steady-state guarantee).
  std::size_t capacity() const { return mask_ + 1; }
  /// Pushes that missed the ring and took the overflow vector.
  std::uint64_t overflow_spills() const { return overflow_spills_; }
  /// Bytes of buffering this lane holds (ring slots; the transient
  /// overflow vector is excluded — it is empty between windows).
  std::size_t state_bytes() const {
    return ring_.size() * sizeof(ShardMessage);
  }

 private:
  std::vector<ShardMessage> ring_;
  std::size_t mask_ = 0;
  // Producer-owned (no concurrent access by contract):
  std::uint64_t overflow_spills_ = 0;
  std::vector<ShardMessage> overflow_;
  // Shared SPSC cursors:
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer
};

}  // namespace ecoscale
