// Reservation-style sequential resource.
//
// A Timeline models a serially reusable resource (a DRAM channel, a link, a
// configuration port, an accelerator pipeline issue slot). Callers reserve a
// service interval starting no earlier than their ready time; contention
// emerges from back-to-back reservations. This analytic style composes with
// the event-driven Simulator: flows compute their completion times through a
// chain of reservations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/units.h"

namespace ecoscale {

class Timeline {
 public:
  Timeline() = default;
  explicit Timeline(std::string name) : name_(std::move(name)) {}

  /// Reserve `service` time starting at max(ready, next_free).
  /// Returns the start time of service; the resource becomes free at
  /// start + service.
  SimTime reserve(SimTime ready, SimDuration service) {
    const SimTime start = ready > next_free_ ? ready : next_free_;
    next_free_ = start + service;
    busy_ += service;
    ++reservations_;
    return start;
  }

  /// Completion time of a reservation made at `ready` for `service`.
  SimTime reserve_until(SimTime ready, SimDuration service) {
    return reserve(ready, service) + service;
  }

  SimTime next_free() const { return next_free_; }
  SimDuration busy_time() const { return busy_; }
  std::uint64_t reservations() const { return reservations_; }
  const std::string& name() const { return name_; }

  /// Utilization over [0, horizon].
  double utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    const SimDuration b = busy_ < horizon ? busy_ : horizon;
    return static_cast<double>(b) / static_cast<double>(horizon);
  }

  void reset() {
    next_free_ = 0;
    busy_ = 0;
    reservations_ = 0;
  }

 private:
  std::string name_;
  SimTime next_free_ = 0;
  SimDuration busy_ = 0;
  std::uint64_t reservations_ = 0;
};

/// Gap-filling variant of Timeline for resources whose reservations arrive
/// out of time order (a remote request reserves the destination DRAM at a
/// *future* arrival time; a later call may legitimately want an earlier
/// slot). A plain Timeline would ratchet `next_free` to the furthest
/// reservation and serialise everything behind it; the calendar keeps the
/// set of busy intervals and places each reservation in the first gap at
/// or after its ready time.
///
/// Two mechanisms keep the interval set small over long runs (it used to
/// grow by one entry per reservation, turning reserve() into a scalability
/// cliff for bench_holistic-sized workloads):
///  - adjacent intervals are coalesced on insert, so back-to-back
///    reservations collapse into one interval instead of accumulating;
///  - release(watermark) prunes every interval that ends at or before the
///    watermark once the caller can promise that no future reservation will
///    be ready before it. Post-watermark reservations see exactly the same
///    start times as they would without pruning.
class CalendarTimeline {
 public:
  CalendarTimeline() = default;
  explicit CalendarTimeline(std::string name) : name_(std::move(name)) {}

  /// Reserve `service` time in the first gap starting at or after `ready`.
  /// Returns the start of service. `ready` values before the release
  /// watermark are clamped up to it (the pruned past is treated as busy).
  SimTime reserve(SimTime ready, SimDuration service) {
    ++reservations_;
    busy_ += service;
    if (service == 0) return ready;
    SimTime candidate = ready > watermark_ ? ready : watermark_;
    // Start from the last interval that begins at or before `candidate`
    // (it may still overlap), then walk forward.
    auto it = intervals_.upper_bound(candidate);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > candidate) candidate = prev->second;
    }
    while (it != intervals_.end() && it->first < candidate + service) {
      candidate = std::max(candidate, it->second);
      ++it;
    }
    insert_coalesced(it, candidate, candidate + service);
    horizon_ = std::max(horizon_, candidate + service);
    if (intervals_.size() > peak_live_) peak_live_ = intervals_.size();
    return candidate;
  }

  SimTime reserve_until(SimTime ready, SimDuration service) {
    return reserve(ready, service) + service;
  }

  /// Promise that no future reserve() will be ready before `watermark`, and
  /// drop every interval that is entirely in the retired past. An interval
  /// straddling the watermark is truncated to start at it. Monotonic: a
  /// watermark earlier than a previous one is a no-op.
  void release(SimTime watermark) {
    if (watermark <= watermark_) return;
    watermark_ = watermark;
    auto it = intervals_.begin();
    while (it != intervals_.end() && it->first < watermark) {
      if (it->second > watermark) {
        // Straddles: keep the live tail [watermark, end).
        const SimTime end = it->second;
        it = intervals_.erase(it);
        intervals_.emplace_hint(it, watermark, end);
        break;
      }
      it = intervals_.erase(it);
      ++pruned_;
    }
  }

  SimDuration busy_time() const { return busy_; }
  std::uint64_t reservations() const { return reservations_; }
  SimTime horizon() const { return horizon_; }
  const std::string& name() const { return name_; }

  // --- interval accounting (prune/coalesce effectiveness) ---------------
  /// Busy intervals currently tracked.
  std::size_t live_intervals() const { return intervals_.size(); }
  /// High-water mark of live_intervals() over the run.
  std::size_t peak_live_intervals() const { return peak_live_; }
  /// Intervals dropped by release().
  std::uint64_t pruned_intervals() const { return pruned_; }
  SimTime watermark() const { return watermark_; }

  double utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    const SimDuration b = busy_ < horizon ? busy_ : horizon;
    return static_cast<double>(b) / static_cast<double>(horizon);
  }

  void reset() {
    intervals_.clear();
    busy_ = 0;
    reservations_ = 0;
    horizon_ = 0;
    watermark_ = 0;
    peak_live_ = 0;
    pruned_ = 0;
  }

 private:
  using IntervalMap = std::map<SimTime, SimTime>;

  /// Insert [start, end), merging with an abutting predecessor and/or
  /// successor. `next` is the first interval with key >= end (the position
  /// reserve()'s forward walk stopped at).
  void insert_coalesced(IntervalMap::iterator next, SimTime start,
                        SimTime end) {
    if (next != intervals_.begin()) {
      auto prev = std::prev(next);
      if (prev->second == start) {
        // Extend the predecessor in place; maybe bridge to the successor.
        if (next != intervals_.end() && next->first == end) {
          prev->second = next->second;
          intervals_.erase(next);
        } else {
          prev->second = end;
        }
        return;
      }
    }
    if (next != intervals_.end() && next->first == end) {
      // Extend the successor leftwards (its key changes, so reinsert).
      const SimTime next_end = next->second;
      auto hint = intervals_.erase(next);
      intervals_.emplace_hint(hint, start, next_end);
      return;
    }
    intervals_.emplace_hint(next, start, end);
  }

  std::string name_;
  IntervalMap intervals_;  // start -> end, non-overlapping
  SimDuration busy_ = 0;
  std::uint64_t reservations_ = 0;
  SimTime horizon_ = 0;
  SimTime watermark_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace ecoscale
