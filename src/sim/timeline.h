// Reservation-style sequential resource.
//
// A Timeline models a serially reusable resource (a DRAM channel, a link, a
// configuration port, an accelerator pipeline issue slot). Callers reserve a
// service interval starting no earlier than their ready time; contention
// emerges from back-to-back reservations. This analytic style composes with
// the event-driven Simulator: flows compute their completion times through a
// chain of reservations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace ecoscale {

class Timeline {
 public:
  Timeline() = default;
  explicit Timeline(std::string name) : name_(std::move(name)) {}

  /// Reserve `service` time starting at max(ready, next_free).
  /// Returns the start time of service; the resource becomes free at
  /// start + service.
  SimTime reserve(SimTime ready, SimDuration service) {
    const SimTime start = ready > next_free_ ? ready : next_free_;
    next_free_ = start + service;
    busy_ += service;
    ++reservations_;
    return start;
  }

  /// Completion time of a reservation made at `ready` for `service`.
  SimTime reserve_until(SimTime ready, SimDuration service) {
    return reserve(ready, service) + service;
  }

  SimTime next_free() const { return next_free_; }
  SimDuration busy_time() const { return busy_; }
  std::uint64_t reservations() const { return reservations_; }
  const std::string& name() const { return name_; }

  /// Utilization over [0, horizon].
  double utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    const SimDuration b = busy_ < horizon ? busy_ : horizon;
    return static_cast<double>(b) / static_cast<double>(horizon);
  }

  void reset() {
    next_free_ = 0;
    busy_ = 0;
    reservations_ = 0;
  }

 private:
  std::string name_;
  SimTime next_free_ = 0;
  SimDuration busy_ = 0;
  std::uint64_t reservations_ = 0;
};

/// Gap-filling variant of Timeline for resources whose reservations arrive
/// out of time order (a remote request reserves the destination DRAM at a
/// *future* arrival time; a later call may legitimately want an earlier
/// slot). A plain Timeline would ratchet `next_free` to the furthest
/// reservation and serialise everything behind it; the calendar keeps the
/// set of busy intervals and places each reservation in the first gap at
/// or after its ready time.
///
/// Storage: a start-sorted ring vector with a `head_` cursor instead of a
/// node-based map. reserve() sits on the per-access fast path of every
/// link and DRAM channel, and the dominant workload is near-monotone
/// arrival times — which on a vector is a contiguous binary search plus an
/// O(1) append, with no node allocation and no pointer chasing. Out-of-
/// order arrivals insert mid-vector (a short memmove near the tail, since
/// skew is bounded by network latency).
///
/// Two mechanisms keep the interval set small over long runs (it used to
/// grow by one entry per reservation, turning reserve() into a scalability
/// cliff for bench_holistic-sized workloads):
///  - adjacent intervals are coalesced on insert, so back-to-back
///    reservations collapse into one interval instead of accumulating;
///  - release(watermark) prunes every interval that ends at or before the
///    watermark once the caller can promise that no future reservation will
///    be ready before it. Post-watermark reservations see exactly the same
///    start times as they would without pruning. Pruning advances `head_`
///    and compacts lazily, so a warmed-up epoch loop never allocates.
class CalendarTimeline {
 public:
  CalendarTimeline() = default;
  explicit CalendarTimeline(std::string name) : name_(std::move(name)) {}

  /// Reserve `service` time in the first gap starting at or after `ready`.
  /// Returns the start of service. `ready` values before the release
  /// watermark are clamped up to it (the pruned past is treated as busy).
  SimTime reserve(SimTime ready, SimDuration service) {
    ++reservations_;
    busy_ += service;
    if (service == 0) return ready;
    SimTime candidate = ready > watermark_ ? ready : watermark_;
    const auto begin = intervals_.begin() + static_cast<std::ptrdiff_t>(head_);
    // Fast path: the reservation lands at or after everything tracked —
    // the common case under (near-)monotone time.
    auto it = intervals_.end();
    if (begin == it || candidate >= (it - 1)->start) {
      if (begin != it && (it - 1)->end > candidate) candidate = (it - 1)->end;
    } else {
      // First interval starting after `candidate` (it may be preceded by
      // one that still overlaps), then walk forward over overlaps.
      it = std::upper_bound(
          begin, intervals_.end(), candidate,
          [](SimTime t, const Interval& iv) { return t < iv.start; });
      if (it != begin && (it - 1)->end > candidate) candidate = (it - 1)->end;
      while (it != intervals_.end() && it->start < candidate + service) {
        candidate = std::max(candidate, it->end);
        ++it;
      }
    }
    insert_coalesced(it, candidate, candidate + service);
    horizon_ = std::max(horizon_, candidate + service);
    if (live_intervals() > peak_live_) peak_live_ = live_intervals();
    return candidate;
  }

  SimTime reserve_until(SimTime ready, SimDuration service) {
    return reserve(ready, service) + service;
  }

  /// Promise that no future reserve() will be ready before `watermark`, and
  /// drop every interval that is entirely in the retired past. An interval
  /// straddling the watermark is truncated to start at it. Monotonic: a
  /// watermark earlier than a previous one is a no-op.
  void release(SimTime watermark) {
    if (watermark <= watermark_) return;
    watermark_ = watermark;
    while (head_ < intervals_.size() &&
           intervals_[head_].start < watermark) {
      if (intervals_[head_].end > watermark) {
        // Straddles: keep the live tail [watermark, end).
        intervals_[head_].start = watermark;
        break;
      }
      ++head_;
      ++pruned_;
    }
    // Reclaim the retired prefix once it dominates the buffer; amortized
    // O(1) per pruned interval, and erase() never reallocates.
    if (head_ >= 64 && head_ >= intervals_.size() - head_) {
      intervals_.erase(intervals_.begin(),
                       intervals_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  SimDuration busy_time() const { return busy_; }
  std::uint64_t reservations() const { return reservations_; }
  SimTime horizon() const { return horizon_; }
  const std::string& name() const { return name_; }

  // --- interval accounting (prune/coalesce effectiveness) ---------------
  /// Busy intervals currently tracked.
  std::size_t live_intervals() const { return intervals_.size() - head_; }
  /// High-water mark of live_intervals() over the run.
  std::size_t peak_live_intervals() const { return peak_live_; }
  /// Intervals dropped by release().
  std::uint64_t pruned_intervals() const { return pruned_; }
  SimTime watermark() const { return watermark_; }

  double utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    const SimDuration b = busy_ < horizon ? busy_ : horizon;
    return static_cast<double>(b) / static_cast<double>(horizon);
  }

  void reset() {
    intervals_.clear();
    head_ = 0;
    busy_ = 0;
    reservations_ = 0;
    horizon_ = 0;
    watermark_ = 0;
    peak_live_ = 0;
    pruned_ = 0;
  }

 private:
  struct Interval {
    SimTime start;
    SimTime end;
  };

  /// Insert [start, end), merging with an abutting predecessor and/or
  /// successor. `next` is the first interval with start >= end (the
  /// position reserve()'s forward walk stopped at).
  void insert_coalesced(std::vector<Interval>::iterator next, SimTime start,
                        SimTime end) {
    const auto begin = intervals_.begin() + static_cast<std::ptrdiff_t>(head_);
    if (next != begin && (next - 1)->end == start) {
      // Extend the predecessor in place; maybe bridge to the successor.
      if (next != intervals_.end() && next->start == end) {
        (next - 1)->end = next->end;
        intervals_.erase(next);
      } else {
        (next - 1)->end = end;
      }
      return;
    }
    if (next != intervals_.end() && next->start == end) {
      // Extend the successor leftwards (order is preserved: start lies
      // strictly after the predecessor's end).
      next->start = start;
      return;
    }
    intervals_.insert(next, Interval{start, end});
  }

  std::string name_;
  std::vector<Interval> intervals_;  // sorted, non-overlapping; live at head_
  std::size_t head_ = 0;             // first live interval
  SimDuration busy_ = 0;
  std::uint64_t reservations_ = 0;
  SimTime horizon_ = 0;
  SimTime watermark_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace ecoscale
