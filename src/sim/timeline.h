// Reservation-style sequential resource.
//
// A Timeline models a serially reusable resource (a DRAM channel, a link, a
// configuration port, an accelerator pipeline issue slot). Callers reserve a
// service interval starting no earlier than their ready time; contention
// emerges from back-to-back reservations. This analytic style composes with
// the event-driven Simulator: flows compute their completion times through a
// chain of reservations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/units.h"

namespace ecoscale {

class Timeline {
 public:
  Timeline() = default;
  explicit Timeline(std::string name) : name_(std::move(name)) {}

  /// Reserve `service` time starting at max(ready, next_free).
  /// Returns the start time of service; the resource becomes free at
  /// start + service.
  SimTime reserve(SimTime ready, SimDuration service) {
    const SimTime start = ready > next_free_ ? ready : next_free_;
    next_free_ = start + service;
    busy_ += service;
    ++reservations_;
    return start;
  }

  /// Completion time of a reservation made at `ready` for `service`.
  SimTime reserve_until(SimTime ready, SimDuration service) {
    return reserve(ready, service) + service;
  }

  SimTime next_free() const { return next_free_; }
  SimDuration busy_time() const { return busy_; }
  std::uint64_t reservations() const { return reservations_; }
  const std::string& name() const { return name_; }

  /// Utilization over [0, horizon].
  double utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    const SimDuration b = busy_ < horizon ? busy_ : horizon;
    return static_cast<double>(b) / static_cast<double>(horizon);
  }

  void reset() {
    next_free_ = 0;
    busy_ = 0;
    reservations_ = 0;
  }

 private:
  std::string name_;
  SimTime next_free_ = 0;
  SimDuration busy_ = 0;
  std::uint64_t reservations_ = 0;
};

/// Gap-filling variant of Timeline for resources whose reservations arrive
/// out of time order (a remote request reserves the destination DRAM at a
/// *future* arrival time; a later call may legitimately want an earlier
/// slot). A plain Timeline would ratchet `next_free` to the furthest
/// reservation and serialise everything behind it; the calendar keeps the
/// set of busy intervals and places each reservation in the first gap at
/// or after its ready time.
class CalendarTimeline {
 public:
  CalendarTimeline() = default;
  explicit CalendarTimeline(std::string name) : name_(std::move(name)) {}

  /// Reserve `service` time in the first gap starting at or after `ready`.
  /// Returns the start of service.
  SimTime reserve(SimTime ready, SimDuration service) {
    ++reservations_;
    busy_ += service;
    if (service == 0) return ready;
    SimTime candidate = ready;
    // Start from the last interval that begins at or before `candidate`
    // (it may still overlap), then walk forward.
    auto it = intervals_.upper_bound(candidate);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > candidate) candidate = prev->second;
    }
    while (it != intervals_.end() && it->first < candidate + service) {
      candidate = std::max(candidate, it->second);
      ++it;
    }
    intervals_.emplace(candidate, candidate + service);
    horizon_ = std::max(horizon_, candidate + service);
    return candidate;
  }

  SimTime reserve_until(SimTime ready, SimDuration service) {
    return reserve(ready, service) + service;
  }

  SimDuration busy_time() const { return busy_; }
  std::uint64_t reservations() const { return reservations_; }
  SimTime horizon() const { return horizon_; }
  const std::string& name() const { return name_; }

  double utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    const SimDuration b = busy_ < horizon ? busy_ : horizon;
    return static_cast<double>(b) / static_cast<double>(horizon);
  }

  void reset() {
    intervals_.clear();
    busy_ = 0;
    reservations_ = 0;
    horizon_ = 0;
  }

 private:
  std::string name_;
  std::map<SimTime, SimTime> intervals_;  // start -> end, non-overlapping
  SimDuration busy_ = 0;
  std::uint64_t reservations_ = 0;
  SimTime horizon_ = 0;
};

}  // namespace ecoscale
