#include "sim/parallel.h"

#include <algorithm>
#include <barrier>
#include <thread>

#include "common/reduce.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace ecoscale {

class RoundGate {
 public:
  explicit RoundGate(std::ptrdiff_t n) : barrier_(n) {}
  void sync() { barrier_.arrive_and_wait(); }

 private:
  std::barrier<> barrier_;
};

namespace {

/// Interned names for the engine's own trace lane: a span per
/// synchronization round plus cumulative counter tracks for merged
/// messages, horizon stalls and work steals (README "sim.stall /
/// sim.steal" — stalls are deterministic, steals wall-clock-side).
struct ParTraceNames {
  CounterId window = CounterRegistry::intern("sim.window");
  CounterId messages = CounterRegistry::intern("sim.messages");
  CounterId stall = CounterRegistry::intern("sim.stall");
  CounterId steal = CounterRegistry::intern("sim.steal");
};
[[maybe_unused]] const ParTraceNames& par_trace_names() {
  static const ParTraceNames names;
  return names;
}

/// Orchestrator lane: distinct tid under the simulation pid, away from the
/// per-shard lanes (shard s traces on tid s + 1; plain Simulators on 0).
constexpr std::uint16_t kEngineTid = 0xFFF0;

/// Which shard (of which engine) the current thread is executing a window
/// for, and which lane it owns; post() validates its `from` argument
/// against this and routes through the lane.
struct RunContext {
  const void* engine = nullptr;
  std::size_t shard = 0;
  ShardLane* lane = nullptr;
};
thread_local RunContext tls_run_context;

/// Canonical merge order: by destination, then (time, source shard, send
/// sequence). The destination queue assigns its tie-breaking sequence
/// numbers in this order, so execution is independent of thread count, of
/// which lane a message rode, of stealing, and of the order the producing
/// shards happened to finish their windows. (src, seq) is unique, so the
/// key is a total order and no stable sort/merge is needed.
struct MergeKeyLess {
  template <typename Item>
  bool operator()(const Item& a, const Item& b) const {
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.time != b.time) return a.time < b.time;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
};

/// Fold one (value, shard) candidate into a top-2-with-argmin accumulator.
inline void fold_top2(SimTime cand, std::uint32_t arg, SimTime& best1,
                      SimTime& best2, std::uint32_t& best_arg) {
  if (cand < best1) {
    best2 = best1;
    best1 = cand;
    best_arg = arg;
  } else if (cand < best2) {
    best2 = cand;
  }
}

}  // namespace

ShardedSimulator::ShardedSimulator(ShardedConfig config)
    : config_(std::move(config)) {
  ECO_CHECK_MSG(config_.shards >= 1, "need at least one shard");
  ECO_CHECK_MSG(config_.lookahead >= 1,
                "conservative lookahead must be positive");
  std::size_t threads = config_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  threads_ = std::min(threads, config_.shards);
  const std::size_t nshards = config_.shards;
  shards_.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    // Lane 0 stays the classic single-engine lane; shard s gets lane s+1.
    shards_.back()->sim.set_trace_lane(static_cast<std::uint16_t>(s + 1));
  }
  lanes_.reserve(threads_);
  slots_.reserve(threads_);
  for (std::size_t t = 0; t < threads_; ++t) {
    lanes_.push_back(std::make_unique<ShardLane>(config_.mailbox_capacity));
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  next_times_.assign(nshards, kNever);

  // Per-pair latency state. With an oracle and a modest shard count,
  // materialize the dense matrix (exact per-destination column minima);
  // above the cap keep only per-source floors so construction and memory
  // stay O(shards) at 6k+ shards.
  source_floor_.assign(nshards, config_.lookahead);
  dest_floor_.assign(nshards, config_.lookahead);
  if (config_.pair_lookahead && nshards > 1) {
    if (nshards <= config_.dense_pair_cap) {
      pair_matrix_.assign(nshards * nshards, 0);
      for (std::size_t s = 0; s < nshards; ++s) {
        SimDuration floor = kNever;
        for (std::size_t d = 0; d < nshards; ++d) {
          if (s == d) continue;
          const SimDuration l = config_.pair_lookahead(s, d);
          ECO_CHECK_MSG(l >= 1,
                        "zero-latency cross-shard pair cannot be sharded "
                        "conservatively");
          pair_matrix_[s * nshards + d] = l;
          floor = std::min(floor, static_cast<SimTime>(l));
        }
        source_floor_[s] = floor;
      }
      // Exact per-destination column minima: the echo-cap distance.
      for (std::size_t d = 0; d < nshards; ++d) {
        SimDuration floor = kNever;
        for (std::size_t b = 0; b < nshards; ++b) {
          if (b == d) continue;
          floor = std::min(floor, pair_matrix_[b * nshards + d]);
        }
        dest_floor_[d] = floor;
      }
      // The adaptive bound is transitively safe only for metric oracles
      // (see parallel.h); spot-check triples so a non-metric oracle fails
      // loudly at construction, not silently in a window. Strided triples
      // alone leave off-stride pockets unchecked, so a seeded random
      // sweep (deterministic: same oracle, same verdict) covers the rest.
      const auto check_triple = [&](std::size_t a, std::size_t b,
                                    std::size_t c) {
        if (a == b || b == c || a == c) return;
        ECO_CHECK_MSG(pair_matrix_[a * nshards + c] <=
                          pair_matrix_[a * nshards + b] +
                              pair_matrix_[b * nshards + c],
                      "pair_lookahead violates the triangle inequality "
                      "(adaptive windows need a route-metric oracle)");
      };
      const std::size_t step = std::max<std::size_t>(1, nshards / 24);
      for (std::size_t a = 0; a < nshards; a += step) {
        for (std::size_t b = 0; b < nshards; b += step) {
          for (std::size_t c = 0; c < nshards; c += step) {
            check_triple(a, b, c);
          }
        }
      }
      Rng triples(0x7121A27u);
      for (int i = 0; i < 1024; ++i) {
        check_triple(triples.uniform_u64(nshards),
                     triples.uniform_u64(nshards),
                     triples.uniform_u64(nshards));
      }
    } else {
      if (config_.source_floor) {
        for (std::size_t s = 0; s < nshards; ++s) {
          const SimDuration f = config_.source_floor(s);
          ECO_CHECK_MSG(f >= 1, "source_floor must be a positive latency");
          source_floor_[s] = f;
        }
      }
      // else: the uniform lookahead floors already in place — a correct
      // lower bound on every pair by the lookahead contract.
      //
      // Either way the floors feed horizons directly, so sample-verify
      // them against the pair oracle: a floor above some actual pair
      // latency would silently over-advance shards.
      const auto check_floor = [&](std::size_t s, std::size_t d) {
        if (s == d) return;
        const SimDuration l = config_.pair_lookahead(s, d);
        ECO_CHECK_MSG(l >= 1,
                      "zero-latency cross-shard pair cannot be sharded "
                      "conservatively");
        ECO_CHECK_MSG(source_floor_[s] <= l,
                      "source_floor exceeds an actual pair latency "
                      "(horizons derived from it would not be "
                      "conservative)");
      };
      Rng pairs(0xF100D5u);
      const std::size_t step = std::max<std::size_t>(1, nshards / 64);
      for (std::size_t s = 0; s < nshards; s += step) {
        for (int k = 0; k < 8; ++k) check_floor(s, pairs.uniform_u64(nshards));
      }
      for (int i = 0; i < 512; ++i) {
        check_floor(pairs.uniform_u64(nshards), pairs.uniform_u64(nshards));
      }
      // Collapsed echo-cap distance: L(b, d) >= source_floor_[b] for every
      // b, so min over b != d of the source floors bounds dest_floor(d)
      // from below (top-2 so d never reads its own floor).
      SimDuration f1 = kNever;
      SimDuration f2 = kNever;
      std::size_t f_arg = 0;
      for (std::size_t s = 0; s < nshards; ++s) {
        if (source_floor_[s] < f1) {
          f2 = f1;
          f1 = source_floor_[s];
          f_arg = s;
        } else if (source_floor_[s] < f2) {
          f2 = source_floor_[s];
        }
      }
      for (std::size_t d = 0; d < nshards; ++d) {
        dest_floor_[d] = d == f_arg ? f2 : f1;
      }
    }
  }
}

ShardedSimulator::~ShardedSimulator() = default;

SimDuration ShardedSimulator::pair_lookahead(std::size_t from,
                                             std::size_t to) const {
  ECO_CHECK(from < shards_.size() && to < shards_.size() && from != to);
  if (!pair_matrix_.empty()) return pair_matrix_[from * shards_.size() + to];
  if (config_.pair_lookahead) return config_.pair_lookahead(from, to);
  return config_.lookahead;
}

void ShardedSimulator::post_message(std::size_t from, std::size_t to,
                                    SimTime t, InlineAction action) {
  ECO_CHECK(from < shards_.size() && to < shards_.size());
  ECO_CHECK_MSG(from != to,
                "same-shard events use shard(s).schedule_*, not post()");
  ECO_CHECK_MSG(tls_run_context.engine == this,
                "post() called outside a running shard action");
  ECO_CHECK_MSG(tls_run_context.shard == from,
                "post() `from` must be the shard executing this action");
  SimDuration bound = pair_lookahead(from, to);
  if (config_.window_mode == WindowMode::kFixedWindow) {
    // Fixed horizons are uniform-lookahead wide whatever the pair's own
    // distance, so the uniform contract must hold as well.
    bound = std::max(bound, config_.lookahead);
  }
  ECO_CHECK_MSG(t >= shards_[from]->sim.now() + bound,
                "cross-shard event inside the conservative lookahead window");
  Shard& src = *shards_[from];
  if (config_.window_mode == WindowMode::kAdaptive) {
    // Self-chain echo cap (parallel.h file comment): any causal chain
    // seeded by this message returns to `from` no earlier than
    // t + dest_floor(from) — the return chain's last leg alone costs at
    // least the cheapest latency into `from` — so the posting shard's
    // window must stop before that time. kFixedWindow needs no cap: there
    // t >= now + lookahead >= the global window end already.
    src.sim.tighten_run_bound(t + dest_floor_[from]);
  }
  tls_run_context.lane->push(t, static_cast<std::uint32_t>(from),
                             static_cast<std::uint32_t>(to), src.post_seq++,
                             std::move(action));
}

void ShardedSimulator::run_shard_window(std::size_t s, SimTime end,
                                        std::size_t lane) {
  const RunContext saved = tls_run_context;
  tls_run_context = RunContext{this, s, lanes_[lane].get()};
  try {
    shards_[s]->sim.run_before(end);
  } catch (...) {
    shards_[s]->error = std::current_exception();
  }
  tls_run_context = saved;
}

void ShardedSimulator::rethrow_shard_error() {
  for (auto& s : shards_) {
    if (s->error) {
      std::exception_ptr e = s->error;
      s->error = nullptr;
      done_.store(true, std::memory_order_relaxed);
      std::rethrow_exception(e);
    }
  }
}

SimTime ShardedSimulator::shard_horizon(std::size_t d) const {
  // Every mode's horizon is clamped to the run_until() bound: events at or
  // after it belong to the next segment. The clamp keeps the horizon a
  // pure function of published state, so determinism is unaffected.
  switch (config_.window_mode) {
    case WindowMode::kFixedWindow:
      return std::min(plan_fixed_end_, run_bound_);
    case WindowMode::kAdaptive:
      break;
  }
  // Both adaptive paths bound d by its *peers'* pending work only: at the
  // round start no chain originating on d has been seeded yet, and the
  // moment one is (d posts during its window) the echo cap in
  // post_message() tightens the running window — see parallel.h.
  if (!pair_matrix_.empty()) {
    // Exact column minimum over the dense pair matrix: the earliest any
    // peer's pending work could reach d.
    const std::size_t n = shards_.size();
    SimTime best = kNever;
    for (std::size_t s = 0; s < n; ++s) {
      const SimTime next = next_times_[s];
      if (s == d || next == kNever) continue;
      best = std::min(best, next + pair_matrix_[s * n + d]);
    }
    return std::min(best, run_bound_);
  }
  // Collapsed horizon from the planner's top-2 of next_s + source_floor_s:
  // min over s != d in O(1). source_floor <= L(s, d) for every d, so this
  // is a (possibly looser, never unsafe) bound.
  return std::min(plan_src_arg_ == d ? plan_src2_ : plan_src1_, run_bound_);
}

void ShardedSimulator::prepare_run() {
  done_.store(false, std::memory_order_relaxed);
  trace_prev_valid_ = false;
  const std::size_t nshards = shards_.size();
  const std::size_t nthreads = threads_;
  // Pre-reserve every per-round buffer so the steady state allocates
  // nothing (sim_alloc_test gates this at --sim-threads > 1): the drain
  // scratch holds one lane, a merge buffer holds as many runs as reach its
  // slot in the reduction tree (slot 0's final run holds everything).
  std::size_t padded = 1;
  while (padded < nthreads) padded <<= 1;
  for (std::size_t t = 0; t < nthreads; ++t) {
    WorkerSlot& slot = *slots_[t];
    const std::size_t cap = lanes_[t]->capacity();
    slot.msgs.clear();
    slot.msgs.reserve(cap);
    const std::size_t reach = t == 0 ? padded : (t & (~t + 1));
    slot.run_a.reserve(reach * cap);
    slot.run_b.reserve(reach * cap);
    slot.run = &slot.run_a;
    const std::size_t lo = t * nshards / nthreads;
    const std::size_t hi = (t + 1) * nshards / nthreads;
    slot.queue.reserve(hi - lo);
  }
  // Seed next-event times, ready queues and fold partials — the same scan
  // the fold phase performs at every round boundary.
  for (std::size_t t = 0; t < nthreads; ++t) fold_range(t);
}

void ShardedSimulator::fold_range(std::size_t tid) {
  WorkerSlot& me = *slots_[tid];
  const std::size_t nshards = shards_.size();
  const std::size_t lo = tid * nshards / threads_;
  const std::size_t hi = (tid + 1) * nshards / threads_;
  me.queue.clear();
  me.part_floor = kNever;
  me.part_src1 = kNever;
  me.part_src2 = kNever;
  me.part_src_arg = 0;
  for (std::size_t d = lo; d < hi; ++d) {
    const Simulator& sim = shards_[d]->sim;
    const SimTime next = sim.idle() ? kNever : sim.next_event_time();
    next_times_[d] = next;
    if (next == kNever) continue;
    me.queue.push_back(static_cast<std::uint32_t>(d));
    me.part_floor = std::min(me.part_floor, next);
    fold_top2(next + source_floor_[d], static_cast<std::uint32_t>(d),
              me.part_src1, me.part_src2, me.part_src_arg);
  }
  me.cursor.store(0, std::memory_order_relaxed);
}

void ShardedSimulator::plan_round() {
  rethrow_shard_error();
  // Fold the per-thread partials: O(threads) here instead of the old
  // O(shards) worker-0 rescan — the top of the next-event reduction tree.
  SimTime floor = kNever;
  SimTime src1 = kNever, src2 = kNever;
  std::uint32_t src_arg = 0;
  SimTime round_min_horizon = kNever;
  for (auto& slot_ptr : slots_) {
    WorkerSlot& slot = *slot_ptr;
    floor = std::min(floor, slot.part_floor);
    fold_top2(slot.part_src1, slot.part_src_arg, src1, src2, src_arg);
    src2 = std::min(src2, slot.part_src2);
    shard_windows_ += slot.executed;
    stalled_windows_ += slot.stalled;
    steals_ += slot.stolen;
    slot.executed = 0;
    slot.stalled = 0;
    slot.stolen = 0;
    round_min_horizon = std::min(round_min_horizon, slot.min_horizon);
    slot.min_horizon = kNever;
  }
  if (trace_prev_valid_) {
    // The span for the round that just completed: [its floor, the tightest
    // horizon any shard ran to). Counters are cumulative tracks.
    const SimTime span_end = round_min_horizon == kNever
                                 ? trace_prev_floor_ + 1
                                 : round_min_horizon;
    ECO_TRACE_SPAN(obs::Cat::kSim, par_trace_names().window,
                   (obs::Lane{obs::kSimPid, kEngineTid}), trace_prev_floor_,
                   span_end, windows_ - 1);
    ECO_TRACE_COUNTER(obs::Cat::kSim, par_trace_names().messages,
                      (obs::Lane{obs::kSimPid, kEngineTid}),
                      trace_prev_floor_, messages());
    ECO_TRACE_COUNTER(obs::Cat::kSim, par_trace_names().stall,
                      (obs::Lane{obs::kSimPid, kEngineTid}),
                      trace_prev_floor_, stalled_windows_);
    if (threads_ > 1) {
      ECO_TRACE_COUNTER(obs::Cat::kSim, par_trace_names().steal,
                        (obs::Lane{obs::kSimPid, kEngineTid}),
                        trace_prev_floor_, steals_);
    }
  }
  if (floor == kNever || floor >= run_bound_) {
    // Drained, or every remaining event sits at or past the run_until()
    // bound — this segment is over (the pending work is the next one's).
    done_.store(true, std::memory_order_relaxed);
    return;
  }
  plan_floor_ = floor;
  plan_fixed_end_ = floor + config_.lookahead;
  plan_src1_ = src1;
  plan_src2_ = src2;
  plan_src_arg_ = src_arg;
  trace_prev_valid_ = true;
  trace_prev_floor_ = floor;
  ++windows_;
}

void ShardedSimulator::execute_round(std::size_t tid) {
  WorkerSlot& me = *slots_[tid];
  const std::size_t nthreads = threads_;
  // Claim shard windows: own queue first, then sweep the other queues
  // round-robin. Queues are fixed for the round, so one sweep claims
  // every candidate exactly once (atomic cursor bump), and whichever
  // thread claims a shard never affects results — only which lane its
  // messages ride, which the canonical merge washes out.
  for (std::size_t v = 0; v < nthreads; ++v) {
    WorkerSlot& q = *slots_[(tid + v) % nthreads];
    const bool stolen = v != 0;
    for (;;) {
      const std::uint32_t idx =
          q.cursor.fetch_add(1, std::memory_order_relaxed);
      if (idx >= q.queue.size()) break;
      const std::size_t d = q.queue[idx];
      const SimTime horizon = shard_horizon(d);
      me.min_horizon = std::min(me.min_horizon, horizon);
      if (stolen) ++me.stolen;
      if (horizon > next_times_[d]) {
        ++me.executed;
        run_shard_window(d, horizon, tid);
      } else {
        // Pending work the horizon forbade: a barrier stall. Deterministic
        // (horizons derive from published simulation state only).
        ++me.stalled;
      }
    }
  }
  // Drain this thread's lane and sort it into a merge run — the leaves of
  // the message reduction tree.
  me.msgs.clear();
  lanes_[tid]->drain(me.msgs);
  std::vector<MergeItem>& run = me.run_a;
  run.clear();
  me.run = &run;
  for (std::size_t i = 0; i < me.msgs.size(); ++i) {
    const ShardMessage& m = me.msgs[i];
    run.push_back(MergeItem{m.time, m.src, m.dst, m.seq,
                            static_cast<std::uint32_t>(tid),
                            static_cast<std::uint32_t>(i)});
  }
  std::sort(run.begin(), run.end(), MergeKeyLess{});
}

void ShardedSimulator::merge_runs(std::size_t tid, RoundGate* gate) {
  // Pairwise tree merge of the per-thread sorted runs: level k merges
  // slots 2^k apart, so after log2(threads) levels slot 0 holds the one
  // canonically-ordered run. Each level is a disjoint set of two-run
  // merges running in parallel; the level barrier publishes the children.
  const std::size_t nthreads = threads_;
  for (std::size_t half = 1; half < nthreads; half <<= 1) {
    if (tid % (2 * half) == 0 && tid + half < nthreads) {
      WorkerSlot& a = *slots_[tid];
      WorkerSlot& b = *slots_[tid + half];
      std::vector<MergeItem>& out =
          a.run == &a.run_a ? a.run_b : a.run_a;
      out.resize(a.run->size() + b.run->size());
      std::merge(a.run->begin(), a.run->end(), b.run->begin(), b.run->end(),
                 out.begin(), MergeKeyLess{});
      a.run = &out;
    }
    if (gate) gate->sync();
  }
}

void ShardedSimulator::insert_and_fold(std::size_t tid, std::size_t total) {
  const std::size_t nshards = shards_.size();
  const std::size_t lo = tid * nshards / threads_;
  const std::size_t hi = (tid + 1) * nshards / threads_;
  if (total > 0) {
    // The final run is sorted by destination first: each thread binary-
    // searches its contiguous destination range and inserts in canonical
    // order, so destination seq numbers come out thread-count invariant.
    const std::vector<MergeItem>& run = *slots_[0]->run;
    const auto dst_less = [](const MergeItem& m, std::size_t d) {
      return m.dst < d;
    };
    const auto begin =
        std::lower_bound(run.begin(), run.end(), lo, dst_less);
    const auto end = std::lower_bound(begin, run.end(), hi, dst_less);
    for (auto it = begin; it != end; ++it) {
      shards_[it->dst]->sim.schedule_at(
          it->time, std::move(slots_[it->lane]->msgs[it->pos].action));
    }
  }
  fold_range(tid);
}

void ShardedSimulator::drive(std::size_t tid, RoundGate* gate,
                             std::exception_ptr* failure) {
  // Round schedule (barriers in parallel runs only):
  //   plan (worker 0) | gate | execute | gate | tree merge (log2 gates)
  //   insert + fold | gate | next plan ...
  for (;;) {
    if (tid == 0) {
      if (failure != nullptr) {
        try {
          plan_round();
        } catch (...) {
          *failure = std::current_exception();
          done_.store(true, std::memory_order_relaxed);
        }
      } else {
        plan_round();
      }
    }
    if (gate) gate->sync();  // plan published (or done)
    if (done_.load(std::memory_order_relaxed)) return;
    execute_round(tid);
    if (gate) gate->sync();  // every run sorted, every window finished
    // Sum lane sizes from msgs, not the run pointers: a fast thread may
    // already be inside merge_runs() swapping run pointers while a slow
    // one is still counting, but msgs is only ever written by its owner
    // on the other side of the gate above (the counts are equal — a run
    // starts as one item per drained message).
    std::size_t total = 0;
    for (const auto& slot : slots_) total += slot->msgs.size();
    if (total > 0) merge_runs(tid, gate);
    insert_and_fold(tid, total);
    if (gate) gate->sync();  // partials published for the next plan
  }
}

void ShardedSimulator::run_parallel() {
  RoundGate gate(static_cast<std::ptrdiff_t>(threads_));
  std::vector<std::thread> pool;
  pool.reserve(threads_ - 1);
  for (std::size_t t = 1; t < threads_; ++t) {
    pool.emplace_back([this, t, &gate] { drive(t, &gate, nullptr); });
  }
  // The calling thread is worker 0 and runs the planner between rounds;
  // plan_round() may rethrow a shard's exception, so workers must still be
  // released to exit before we propagate it.
  std::exception_ptr failure;
  drive(0, &gate, &failure);
  for (auto& t : pool) t.join();
  if (failure) std::rethrow_exception(failure);
}

void ShardedSimulator::run() { run_until(kNever); }

bool ShardedSimulator::run_until(SimTime bound) {
  run_bound_ = bound;
  prepare_run();
  try {
    if (threads_ <= 1 || shards_.size() == 1) {
      drive(0, nullptr, nullptr);
    } else {
      run_parallel();
    }
  } catch (...) {
    run_bound_ = kNever;
    throw;
  }
  run_bound_ = kNever;
  rethrow_shard_error();
  for (const auto& s : shards_) {
    if (!s->sim.idle()) return false;
  }
  return true;
}

std::uint64_t ShardedSimulator::messages() const {
  return reduce_tree<std::uint64_t>(
      shards_.size(), 0,
      [&](std::size_t s) { return shards_[s]->post_seq; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t ShardedSimulator::mailbox_spills() const {
  std::uint64_t total = 0;
  for (const auto& l : lanes_) total += l->overflow_spills();
  return total;
}

std::size_t ShardedSimulator::mailbox_state_bytes() const {
  std::size_t total = 0;
  for (const auto& l : lanes_) total += l->state_bytes();
  return total;
}

std::uint64_t ShardedSimulator::events_processed() const {
  return reduce_tree<std::uint64_t>(
      shards_.size(), 0,
      [&](std::size_t s) { return shards_[s]->sim.events_processed(); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

SimTime ShardedSimulator::now() const {
  return reduce_tree<SimTime>(
      shards_.size(), 0,
      [&](std::size_t s) { return shards_[s]->sim.now(); },
      [](SimTime a, SimTime b) { return std::max(a, b); });
}

std::uint64_t ShardedSimulator::shard_wall_time_ns() const {
  return reduce_tree<std::uint64_t>(
      shards_.size(), 0,
      [&](std::size_t s) { return shards_[s]->sim.wall_time_ns(); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

}  // namespace ecoscale
