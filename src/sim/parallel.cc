#include "sim/parallel.h"

#include <algorithm>
#include <barrier>
#include <limits>
#include <thread>

#include "obs/trace.h"

namespace ecoscale {

namespace {

/// Interned names for the engine's own trace lanes (per-window span plus a
/// drained-messages counter track).
struct ParTraceNames {
  CounterId window = CounterRegistry::intern("psim.window");
  CounterId messages = CounterRegistry::intern("psim.messages");
};
[[maybe_unused]] const ParTraceNames& par_trace_names() {
  static const ParTraceNames names;
  return names;
}

/// Orchestrator lane: distinct tid under the simulation pid, away from the
/// per-shard lanes (shard s traces on tid s + 1; plain Simulators on 0).
constexpr std::uint16_t kEngineTid = 0xFFF0;

/// Which shard (of which engine) the current thread is executing a window
/// for, and which lane it owns; post() validates its `from` argument
/// against this and routes through the lane.
struct RunContext {
  const void* engine = nullptr;
  std::size_t shard = 0;
  ShardLane* lane = nullptr;
};
thread_local RunContext tls_run_context;

}  // namespace

ShardedSimulator::ShardedSimulator(ShardedConfig config) : config_(config) {
  ECO_CHECK_MSG(config_.shards >= 1, "need at least one shard");
  ECO_CHECK_MSG(config_.lookahead >= 1,
                "conservative lookahead must be positive");
  std::size_t threads = config_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  threads_ = std::min(threads, config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    // Lane 0 stays the classic single-engine lane; shard s gets lane s+1.
    shards_.back()->sim.set_trace_lane(static_cast<std::uint16_t>(s + 1));
  }
  lanes_.reserve(threads_);
  for (std::size_t t = 0; t < threads_; ++t) {
    lanes_.push_back(std::make_unique<ShardLane>(config_.mailbox_capacity));
  }
}

void ShardedSimulator::post_message(std::size_t from, std::size_t to,
                                    SimTime t, InlineAction action) {
  ECO_CHECK(from < shards_.size() && to < shards_.size());
  ECO_CHECK_MSG(from != to,
                "same-shard events use shard(s).schedule_*, not post()");
  ECO_CHECK_MSG(tls_run_context.engine == this,
                "post() called outside a running shard action");
  ECO_CHECK_MSG(tls_run_context.shard == from,
                "post() `from` must be the shard executing this action");
  ECO_CHECK_MSG(t >= shards_[from]->sim.now() + config_.lookahead,
                "cross-shard event inside the lookahead window");
  Shard& src = *shards_[from];
  tls_run_context.lane->push(t, static_cast<std::uint32_t>(from),
                             static_cast<std::uint32_t>(to), src.post_seq++,
                             std::move(action));
}

void ShardedSimulator::drain_mailboxes() {
  merge_msgs_.clear();
  merge_order_.clear();
  for (auto& lane : lanes_) lane->drain(merge_msgs_);
  if (merge_msgs_.empty()) return;
  for (std::size_t i = 0; i < merge_msgs_.size(); ++i) {
    const ShardMessage& m = merge_msgs_[i];
    merge_order_.push_back(MergeItem{m.time, m.src, m.dst, m.seq,
                                     static_cast<std::uint32_t>(i)});
  }
  // Canonical merge order: by destination, then (time, source shard, send
  // sequence). The destination queue assigns its tie-breaking sequence
  // numbers in this order, so execution is independent of thread count, of
  // which lane a message rode, and of the order the producing shards
  // happened to finish their windows. (src, seq) is unique, so the key is
  // a total order and no stable sort is needed.
  std::sort(merge_order_.begin(), merge_order_.end(),
            [](const MergeItem& a, const MergeItem& b) {
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.time != b.time) return a.time < b.time;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (const MergeItem& item : merge_order_) {
    shards_[item.dst]->sim.schedule_at(item.time,
                                       std::move(merge_msgs_[item.pos].action));
  }
}

void ShardedSimulator::publish_window() {
  rethrow_shard_error();
  drain_mailboxes();
  constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
  SimTime next = kNever;
  for (const auto& s : shards_) {
    if (!s->sim.idle()) next = std::min(next, s->sim.next_event_time());
  }
  if (next == kNever) {
    done_.store(true, std::memory_order_relaxed);
    return;
  }
  const SimTime end = next + config_.lookahead;
  ECO_TRACE_SPAN(obs::Cat::kSim, par_trace_names().window,
                 (obs::Lane{obs::kSimPid, kEngineTid}), next, end,
                 windows_);
  window_end_.store(end, std::memory_order_relaxed);
  ++windows_;
}

void ShardedSimulator::run_shard_window(std::size_t s, SimTime end,
                                        std::size_t lane) {
  const RunContext saved = tls_run_context;
  tls_run_context = RunContext{this, s, lanes_[lane].get()};
  try {
    shards_[s]->sim.run_before(end);
  } catch (...) {
    shards_[s]->error = std::current_exception();
  }
  tls_run_context = saved;
}

void ShardedSimulator::rethrow_shard_error() {
  for (auto& s : shards_) {
    if (s->error) {
      std::exception_ptr e = s->error;
      s->error = nullptr;
      done_.store(true, std::memory_order_relaxed);
      std::rethrow_exception(e);
    }
  }
}

void ShardedSimulator::run_sequential() {
  for (;;) {
    publish_window();
    if (done_.load(std::memory_order_relaxed)) return;
    const SimTime end = window_end_.load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      run_shard_window(s, end, 0);
    }
  }
}

void ShardedSimulator::run_parallel() {
  const std::size_t nthreads = threads_;
  std::barrier<> gate(static_cast<std::ptrdiff_t>(nthreads));
  // Thread t owns lane t for the whole run; shard s always runs on thread
  // s mod nthreads, so a shard's messages ride the same lane every window
  // (the merge sorts by the message's own key, so this matters only for
  // cache locality, never for results).
  auto stripe = [&](std::size_t tid) {
    const SimTime end = window_end_.load(std::memory_order_relaxed);
    for (std::size_t s = tid; s < shards_.size(); s += nthreads) {
      run_shard_window(s, end, tid);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (std::size_t t = 1; t < nthreads; ++t) {
    pool.emplace_back([&, t] {
      for (;;) {
        gate.arrive_and_wait();  // window published (or done)
        if (done_.load(std::memory_order_relaxed)) return;
        stripe(t);
        gate.arrive_and_wait();  // window complete
      }
    });
  }
  // The calling thread is worker 0 and runs the merge step between
  // windows; publish_window() may throw a shard's rethrown exception, so
  // workers must still be released to exit before we propagate it.
  std::exception_ptr failure;
  for (;;) {
    try {
      publish_window();
    } catch (...) {
      failure = std::current_exception();
      done_.store(true, std::memory_order_relaxed);
    }
    gate.arrive_and_wait();
    if (done_.load(std::memory_order_relaxed)) break;
    stripe(0);
    gate.arrive_and_wait();
  }
  for (auto& t : pool) t.join();
  if (failure) std::rethrow_exception(failure);
}

void ShardedSimulator::run() {
  done_.store(false, std::memory_order_relaxed);
  if (threads_ <= 1 || shards_.size() == 1) {
    run_sequential();
  } else {
    run_parallel();
  }
  rethrow_shard_error();
}

std::uint64_t ShardedSimulator::messages() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->post_seq;
  return total;
}

std::uint64_t ShardedSimulator::mailbox_spills() const {
  std::uint64_t total = 0;
  for (const auto& l : lanes_) total += l->overflow_spills();
  return total;
}

std::size_t ShardedSimulator::mailbox_state_bytes() const {
  std::size_t total = 0;
  for (const auto& l : lanes_) total += l->state_bytes();
  return total;
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim.events_processed();
  return total;
}

SimTime ShardedSimulator::now() const {
  SimTime best = 0;
  for (const auto& s : shards_) best = std::max(best, s->sim.now());
  return best;
}

std::uint64_t ShardedSimulator::shard_wall_time_ns() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim.wall_time_ns();
  return total;
}

}  // namespace ecoscale
