// Discrete-event simulation kernel.
//
// A Simulator owns a monotonic picosecond clock and a binary heap of pending
// events. Ties are broken by insertion sequence number, so a run is fully
// deterministic: the same seed and the same schedule order always produce
// the same trace.
//
// Hot-path layout: actions are InlineAction (captures up to 64 bytes live
// inside the slot, larger ones spill to a recycled block pool) and are
// parked in a chunked slab of recycled slots; the heap itself orders only
// POD (time, seq, slot) entries. Sifting therefore moves 24-byte PODs
// instead of whole events, and because slab chunks never move, a popped
// action runs in place — retiring an event copies nothing and performs no
// heap allocation at all.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/inline_action.h"

namespace ecoscale {

namespace detail {
/// Interned event names for the kernel's trace sites, resolved once.
struct SimTraceNames {
  CounterId run = CounterRegistry::intern("sim.run");
  CounterId step = CounterRegistry::intern("sim.step");
  CounterId pending = CounterRegistry::intern("sim.pending");
};
inline const SimTraceNames& sim_trace_names() {
  static const SimTraceNames names;
  return names;
}
}  // namespace detail

class Simulator {
 public:
  using Action = InlineAction;

  SimTime now() const { return now_; }

  /// Schedule an action at an absolute time (must not be in the past).
  /// Accepts any `void()` callable; the capture is constructed directly
  /// inside a recycled slab slot (no temporary, no heap allocation for
  /// captures up to InlineAction::kInlineBytes).
  template <typename F>
  void schedule_at(SimTime t, F&& action) {
    ECO_CHECK_MSG(t >= now_, "event scheduled in the past");
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if ((slot_count_ >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Action[]>(kChunkSize));
      }
      slot = slot_count_++;
    }
    slot_ref(slot).emplace(std::forward<F>(action));
    heap_push(Entry{t, next_seq_++, slot});
  }

  /// Schedule an action `delay` after the current time.
  template <typename F>
  void schedule_after(SimDuration delay, F&& action) {
    schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Pre-size the event storage so steady-state scheduling never
  /// reallocates (it stops reallocating on its own once the in-flight
  /// event count reaches its steady state).
  void reserve_events(std::size_t n) {
    heap_.reserve(n);
    free_slots_.reserve(n);
    const std::size_t want = (n + kChunkSize - 1) >> kChunkShift;
    chunks_.reserve(want);
    while (chunks_.size() < want) {
      chunks_.push_back(std::make_unique<Action[]>(kChunkSize));
    }
  }

  /// Run until the event queue is empty.
  void run() {
    const auto t0 = Clock::now();
    ECO_TRACE_BEGIN(obs::Cat::kSim, detail::sim_trace_names().run,
                    (obs::Lane{obs::kSimPid, trace_tid_}), now_);
    while (step_untimed()) {
    }
    ECO_TRACE_END(obs::Cat::kSim, detail::sim_trace_names().run,
                  (obs::Lane{obs::kSimPid, trace_tid_}), now_);
    wall_ns_ += elapsed_ns(t0);
  }

  /// Run while events exist and their time is <= `t`; then advance the
  /// clock to `t`. Returns true if events remain beyond `t`.
  bool run_until(SimTime t) {
    const auto t0 = Clock::now();
    while (has_due(t)) step_untimed();
    wall_ns_ += elapsed_ns(t0);
    now_ = std::max(now_, t);
    return !idle();
  }

  /// Run every event with time strictly before `end` and stop, leaving the
  /// clock at the last retired event (NOT at `end`). This is the window
  /// primitive of the sharded parallel engine: events delivered from other
  /// shards at exactly the window edge must still be schedulable, so the
  /// clock never advances past what actually executed.
  void run_before(SimTime end) {
    const auto t0 = Clock::now();
    run_bound_ = end;
    while (has_due_before(run_bound_)) step_untimed();
    wall_ns_ += elapsed_ns(t0);
  }

  /// Tighten the bound of the run_before() call currently executing this
  /// action (no-op unless `end` is below it; reset by the next
  /// run_before). The sharded engine calls this from inside a posting
  /// action: once a shard emits a cross-shard message it must stop before
  /// the earliest time an echo of that message could return (parallel.h,
  /// "self-chain echo cap").
  void tighten_run_bound(SimTime end) {
    run_bound_ = std::min(run_bound_, end);
  }

  /// Timestamp of the earliest pending event. Precondition: !idle().
  SimTime next_event_time() const {
    const Entry* e = peek_min();
    ECO_CHECK_MSG(e != nullptr, "next_event_time() on an idle simulator");
    return e->time;
  }

  /// Execute the single earliest event. Returns false if none is pending.
  bool step() {
    const auto t0 = Clock::now();
    const bool fired = step_untimed();
    wall_ns_ += elapsed_ns(t0);
    return fired;
  }

  bool idle() const { return heap_.empty() && sorted_.empty(); }

  /// Trace lane (tid under the kSimPid process) this kernel's spans land
  /// in. The default 0 is the classic single-engine lane; the sharded
  /// engine gives every shard its own lane so a Chrome trace shows one
  /// timeline row per Compute Node shard.
  void set_trace_lane(std::uint16_t tid) { trace_tid_ = tid; }
  std::uint16_t trace_lane() const { return trace_tid_; }
  std::size_t pending_events() const {
    return heap_.size() + sorted_.size();
  }
  std::uint64_t events_processed() const { return events_processed_; }

  // --- wall-clock throughput --------------------------------------------
  /// Wall time spent retiring events inside run()/run_until()/step().
  std::uint64_t wall_time_ns() const { return wall_ns_; }
  /// Events retired per wall-clock second across all run calls so far
  /// (0 before any event has been processed).
  double events_per_second() const {
    if (wall_ns_ == 0 || events_processed_ == 0) return 0.0;
    return static_cast<double>(events_processed_) * 1e9 /
           static_cast<double>(wall_ns_);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const Entry& a, const Entry& b) {
#ifdef __SIZEOF_INT128__
    // One branchless 128-bit compare of (time, seq) instead of two
    // dependent branches; sift loops live and die by this comparator.
    const auto ka =
        (static_cast<unsigned __int128>(a.time) << 64) | a.seq;
    const auto kb =
        (static_cast<unsigned __int128>(b.time) << 64) | b.seq;
    return ka < kb;
#else
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
#endif
  }

  // 4-ary min-heap: half the sift depth of a binary heap and the four
  // children share cache lines, which is where a discrete-event core
  // spends its time once events are allocation-free.
  void heap_push(Entry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  static constexpr std::size_t kFloydPopThreshold = 4096;
  static constexpr std::size_t kSortRunThreshold = 8192;

  Entry heap_pop() {
    const Entry top = heap_[0];
    const Entry tail = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
      std::size_t i = 0;
      if (n <= kFloydPopThreshold) {
        // Floyd: sink the hole to a leaf choosing the min child only (no
        // per-level tail comparison), then sift the tail element back up.
        // Wins while the heap is cache-resident; on deep cold heaps the
        // up-pass re-touches evicted lines, so large heaps use the
        // classic early-exit sift instead.
        for (;;) {
          const std::size_t first = 4 * i + 1;
          if (first >= n) break;
          const std::size_t last = first + 4 < n ? first + 4 : n;
          std::size_t best = first;
          for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best])) best = c;
          }
          heap_[i] = heap_[best];
          i = best;
        }
        while (i > 0) {
          const std::size_t parent = (i - 1) >> 2;
          if (!earlier(tail, heap_[parent])) break;
          heap_[i] = heap_[parent];
          i = parent;
        }
      } else {
        for (;;) {
          const std::size_t first = 4 * i + 1;
          if (first >= n) break;
          const std::size_t last = first + 4 < n ? first + 4 : n;
          std::size_t best = first;
          for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best])) best = c;
          }
          if (!earlier(heap_[best], tail)) break;
          heap_[i] = heap_[best];
          i = best;
        }
      }
      heap_[i] = tail;
    }
    return top;
  }

  bool has_due(SimTime t) const {
    if (!heap_.empty() && heap_.front().time <= t) return true;
    return !sorted_.empty() && sorted_.back().time <= t;
  }

  bool has_due_before(SimTime t) const {
    if (!heap_.empty() && heap_.front().time < t) return true;
    return !sorted_.empty() && sorted_.back().time < t;
  }

  // When a large backlog has accumulated in the heap, convert it once into
  // a descending sorted run: popping the minimum becomes pop_back, and one
  // std::sort of POD entries beats draining the same entries through
  // O(log n) sifts. New arrivals keep landing in the (now small) heap;
  // pop_min takes the smaller of the two fronts, so execution order is
  // identical to a single priority queue.
  void maybe_convert_backlog() {
    if (heap_.size() < kSortRunThreshold || heap_.size() < sorted_.size() / 4) {
      return;
    }
    sorted_.insert(sorted_.end(), heap_.begin(), heap_.end());
    heap_.clear();
    std::sort(sorted_.begin(), sorted_.end(),
              [](const Entry& a, const Entry& b) { return earlier(b, a); });
  }

  Entry pop_min() {
    if (!sorted_.empty() &&
        (heap_.empty() || earlier(sorted_.back(), heap_.front()))) {
      const Entry e = sorted_.back();
      sorted_.pop_back();
      return e;
    }
    return heap_pop();
  }

  const Entry* peek_min() const {
    const Entry* h = heap_.empty() ? nullptr : &heap_.front();
    const Entry* s = sorted_.empty() ? nullptr : &sorted_.back();
    if (h == nullptr) return s;
    if (s == nullptr) return h;
    return earlier(*s, *h) ? s : h;
  }

  bool step_untimed() {
    if (heap_.empty() && sorted_.empty()) return false;
    maybe_convert_backlog();
    // The action runs in place in its slab slot: chunks are
    // pointer-stable, so scheduling from inside the action (which may grow
    // the slab) cannot move the running capture. The slot is only
    // returned to the free list after the capture is destroyed, so a
    // nested schedule_at can never overwrite it mid-execution.
    const Entry entry = pop_min();
    Action& action = slot_ref(entry.slot);
    if (const Entry* next = peek_min()) {
      // The very next event's capture is a dependent random access into
      // the slab; start pulling it in while this action runs.
      __builtin_prefetch(&slot_ref(next->slot));
    }
    // Dispatch span: the clock advance this event retired, with the queue
    // depth it left behind — the timeline view of where sim-time goes.
    ECO_TRACE_SPAN(obs::Cat::kSim, detail::sim_trace_names().step,
                   (obs::Lane{obs::kSimPid, trace_tid_}), now_, entry.time,
                   pending_events());
    ECO_TRACE_COUNTER(obs::Cat::kSim, detail::sim_trace_names().pending,
                      (obs::Lane{obs::kSimPid, trace_tid_}), entry.time,
                      pending_events());
    now_ = entry.time;
    ++events_processed_;
    action();
    action.reset();
    free_slots_.push_back(entry.slot);
    return true;
  }

  static std::uint64_t elapsed_ns(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
  }

  // Parked actions live in fixed-size chunks so their addresses never
  // change as the slab grows.
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Action& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  SimTime now_ = 0;
  SimTime run_bound_ = 0;  // live bound of the run_before() in flight
  std::uint16_t trace_tid_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t wall_ns_ = 0;
  std::vector<Entry> heap_;             // POD ordering entries only
  std::vector<Entry> sorted_;           // descending; back() is the minimum
  std::vector<std::unique_ptr<Action[]>> chunks_;  // pointer-stable slab
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace ecoscale
