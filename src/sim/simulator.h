// Discrete-event simulation kernel.
//
// A Simulator owns a monotonic picosecond clock and a heap of pending
// events. Ties are broken by insertion sequence number, so a run is fully
// deterministic: the same seed and the same schedule order always produce
// the same trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace ecoscale {

class Simulator {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule an action at an absolute time (must not be in the past).
  void schedule_at(SimTime t, Action action) {
    ECO_CHECK_MSG(t >= now_, "event scheduled in the past");
    queue_.push(Event{t, next_seq_++, std::move(action)});
  }

  /// Schedule an action `delay` after the current time.
  void schedule_after(SimDuration delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run until the event queue is empty.
  void run() {
    while (step()) {
    }
  }

  /// Run while events exist and their time is <= `t`; then advance the
  /// clock to `t`. Returns true if events remain beyond `t`.
  bool run_until(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) step();
    now_ = std::max(now_, t);
    return !queue_.empty();
  }

  /// Execute the single earliest event. Returns false if none is pending.
  bool step() {
    if (queue_.empty()) return false;
    // Move the event out before executing: the action may schedule more.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.action();
    return true;
  }

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ecoscale
