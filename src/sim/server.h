// Event-driven FIFO server for the Simulator.
//
// Jobs are submitted with a service time and a completion callback; the
// server processes them one at a time in arrival order. Used for actors
// whose queueing dynamics matter (per-worker schedulers, config ports under
// bursty load).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "common/units.h"
#include "sim/simulator.h"

namespace ecoscale {

class Server {
 public:
  using Completion = std::function<void(SimTime finish)>;

  Server(Simulator& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a job. The completion callback fires at service finish.
  void submit(SimDuration service, Completion done) {
    queue_.push_back(Job{service, std::move(done)});
    ++submitted_;
    if (!busy_) start_next();
  }

  std::size_t queue_length() const { return queue_.size() + (busy_ ? 1 : 0); }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t submitted() const { return submitted_; }
  SimDuration busy_time() const { return busy_time_; }
  const std::string& name() const { return name_; }

 private:
  struct Job {
    SimDuration service;
    Completion done;
  };

  void start_next() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_time_ += job.service;
    sim_.schedule_after(job.service, [this, job = std::move(job)]() mutable {
      ++completed_;
      const SimTime finish = sim_.now();
      // Start the next job before running the callback so a callback that
      // submits more work observes a consistent queue.
      start_next();
      if (job.done) job.done(finish);
    });
  }

  Simulator& sim_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  SimDuration busy_time_ = 0;
};

}  // namespace ecoscale
