// Allocation-free type-erased callable for the simulation hot path.
//
// Scheduling an event used to cost one heap allocation per std::function
// (libstdc++ spills any capture over 16 bytes). InlineAction stores captures
// up to kInlineBytes directly inside the event record; larger captures spill
// to a thread-local block pool, so steady-state scheduling performs no heap
// allocation at all. Move-only: an action is scheduled once and executed
// once, so copyability would only force captures to be copyable for nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace ecoscale {

namespace detail {

/// Fixed-size block pool for actions whose captures exceed the inline
/// buffer. Blocks are recycled through a thread-local free list: after the
/// first few spills a simulation reuses the same blocks forever. Each
/// Simulator lives on one thread (the parallel sweep harness gives every
/// sweep point its own), so a thread-local list needs no locking; a block
/// freed on a different thread than it was allocated on simply migrates.
class ActionBlockPool {
 public:
  static constexpr std::size_t kBlockBytes = 256;
  static constexpr std::size_t kMaxFree = 1024;  // cap retained blocks

  static void* allocate() {
    Freelist& fl = freelist();
    if (fl.head != nullptr) {
      Node* n = fl.head;
      fl.head = n->next;
      --fl.count;
      ++stats().pool_hits;
      return n;
    }
    ++stats().pool_misses;
    return ::operator new(kBlockBytes, std::align_val_t{alignof(Node)});
  }

  static void deallocate(void* p) {
    Freelist& fl = freelist();
    if (fl.count < kMaxFree) {
      Node* n = static_cast<Node*>(p);
      n->next = fl.head;
      fl.head = n;
      ++fl.count;
      return;
    }
    ::operator delete(p, std::align_val_t{alignof(Node)});
  }

  struct Stats {
    std::uint64_t pool_hits = 0;    // spills served from the free list
    std::uint64_t pool_misses = 0;  // spills that hit the heap
  };
  static Stats& stats() {
    thread_local Stats s;
    return s;
  }

 private:
  struct alignas(std::max_align_t) Node {
    Node* next;
  };
  struct Freelist {
    Node* head = nullptr;
    std::size_t count = 0;
    ~Freelist() {
      while (head != nullptr) {
        Node* n = head;
        head = n->next;
        ::operator delete(n, std::align_val_t{alignof(Node)});
      }
    }
  };
  static Freelist& freelist() {
    thread_local Freelist fl;
    return fl;
  }
};

}  // namespace detail

/// Move-only small-buffer-optimized `void()` callable.
class InlineAction {
 public:
  /// Captures up to this many bytes live inside the action itself.
  static constexpr std::size_t kInlineBytes = 64;

  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    construct(std::forward<F>(f));
  }

  /// Destroy the current payload (if any) and construct a new one in
  /// place — the slab fast path: no temporary InlineAction, the capture is
  /// built directly inside the slot's storage.
  template <typename F>
  void emplace(F&& f) {
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, InlineAction>) {
      *this = std::move(f);
    } else {
      reset();
      construct(std::forward<F>(f));
    }
  }

  InlineAction(InlineAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() {
    ECO_CHECK_MSG(ops_ != nullptr, "invoking an empty InlineAction");
    ops_->invoke(storage_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroy the payload (if any); the action becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move the payload from src storage into dst storage and destroy the
    // source (a "relocate"); for spilled payloads this just moves the
    // pointer, so it is unconditionally noexcept.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    // Trivially copyable + trivially destructible inline payload: moving is
    // a fixed-size memcpy and destruction is a no-op, so the per-event hot
    // path skips both indirect calls.
    bool trivial;
  };

  template <typename F>
  void construct(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>);
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else if constexpr (sizeof(Fn) <=
                             detail::ActionBlockPool::kBlockBytes &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      void* block = detail::ActionBlockPool::allocate();
      ::new (block) Fn(std::forward<F>(f));
      ptr() = block;
      ops_ = &pooled_ops<Fn>;
    } else {
      ptr() = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  // Precondition: ops_ == other.ops_ != nullptr.
  void relocate_from(InlineAction& other) noexcept {
    if (ops_->trivial) {
      std::memcpy(storage_, other.storage_, kInlineBytes);
    } else {
      ops_->relocate(storage_, other.storage_);
    }
    other.ops_ = nullptr;
  }

  void*& ptr() noexcept { return *reinterpret_cast<void**>(storage_); }
  static void*& ptr_of(void* storage) noexcept {
    return *static_cast<void**>(storage);
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      /*invoke=*/[](void* s) { (*static_cast<Fn*>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      /*destroy=*/[](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
      /*trivial=*/std::is_trivially_copyable_v<Fn> &&
          std::is_trivially_destructible_v<Fn>,
  };

  template <typename Fn>
  static constexpr Ops pooled_ops = {
      /*invoke=*/[](void* s) { (*static_cast<Fn*>(ptr_of(s)))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        ptr_of(dst) = ptr_of(src);
        ptr_of(src) = nullptr;
      },
      /*destroy=*/
      [](void* s) noexcept {
        void* block = ptr_of(s);
        static_cast<Fn*>(block)->~Fn();
        detail::ActionBlockPool::deallocate(block);
      },
      /*trivial=*/false,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      /*invoke=*/[](void* s) { (*static_cast<Fn*>(ptr_of(s)))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        ptr_of(dst) = ptr_of(src);
        ptr_of(src) = nullptr;
      },
      /*destroy=*/
      [](void* s) noexcept { delete static_cast<Fn*>(ptr_of(s)); },
      /*trivial=*/false,
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ecoscale
