// Deterministic schedule perturbation for randomized-interleaving runs.
//
// Litmus-style executors explore schedules by adding bounded jitter to
// event issue times. The jitter must be (a) deterministic per seed, so a
// failing schedule replays, and (b) independent of evaluation order, so a
// sharded run at N worker threads draws exactly the values a 1-thread run
// draws. A stateful Rng stream satisfies neither across threads; this is
// instead a pure hash: every (stream, step) pair maps to its jitter
// independently, with splitmix64 as the mixer (the same finalizer
// common/rng.h seeds with).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace ecoscale {

class SchedulePerturb {
 public:
  explicit SchedulePerturb(std::uint64_t seed) : seed_(seed) {}

  /// Jitter in [0, max] for step `step` of logical stream `stream`
  /// (e.g. stream = litmus thread, step = op index; or stream = shard,
  /// step = serialization counter). Pure function of (seed, stream, step).
  SimDuration jitter(std::uint64_t stream, std::uint64_t step,
                     SimDuration max) const {
    if (max == 0) return 0;
    return mix(seed_ ^ mix(stream * 0x9e3779b97f4a7c15ull + step)) %
           (max + 1);
  }

  std::uint64_t seed() const { return seed_; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t seed_;
};

}  // namespace ecoscale
