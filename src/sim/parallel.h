// Conservative parallel discrete-event engine (sharded Simulator).
//
// ECOSCALE's hierarchy bounds communication distance: Workers inside a
// Compute Node interact at L0 latencies while anything that crosses a node
// boundary pays at least the interconnect's minimum inter-node latency.
// That bound makes node boundaries natural parallelization boundaries for
// the simulator — the same decomposition the runtime itself exploits. The
// ShardedSimulator gives every Compute Node (or any caller-chosen
// partition) its own event queue (a full `Simulator` with its slab, 4-ary
// heap and sorted-run backlog) and advances the shards concurrently inside
// synchronization rounds. Two window policies (WindowMode):
//
//   kFixedWindow   every shard runs to the same global horizon
//                      end = T + L,  T = min next event over all shards,
//                                    L = uniform lookahead
//                  — the PR-5 engine, kept as the baseline-locked mode.
//
//   kAdaptive      each shard d starts its round with the horizon
//                      end_d = min over s != d of next_s + L(s, d)
//                  where L(s, d) is a per-pair latency oracle (defaulting
//                  to the uniform lookahead), and the bound is *tightened
//                  while the window runs*: the moment d posts a message
//                  with delivery time t, its window is capped at
//                  t + dest_floor(d), dest_floor(d) = min over b != d of
//                  L(b, d) — the self-chain echo cap. Loosely-coupled
//                  shards run long windows while tightly-coupled ones
//                  stay conservative, and every shard (including self)
//                  contributes to its own bound the moment it can matter.
//
// Conservative correctness of the adaptive bound, with a triangle-
// inequality oracle (any route/shortest-path latency is one — every
// cross-shard leg of a causal chain pays at least its pair latency):
//
//   * Chains starting on a peer: any future event on d seeded by a
//     currently-pending event on a shard s != d (time >= next_s) reaches
//     d no earlier than next_s + L(s, d) >= end_d.
//   * Chains starting on d itself (d posts to b, something eventually
//     posts back): the round-start horizon cannot see these — if d holds
//     the global floor and its peers are distant, end_d can exceed the
//     echo time next_d + L(d, b) + L(b, d). The echo cap closes exactly
//     this hole: the seeding post (delivery time t) stops d's own window
//     before t + dest_floor(d), and any echo of it arrives no earlier
//     (the return chain's last leg alone costs >= dest_floor(d)).
//   * Later rounds: messages posted during a round are merged at the
//     round boundary, before any horizon is recomputed, so while a chain
//     is in flight some shard always holds one of its events as pending
//     work and the peer bound above protects d for the rest of the
//     chain's life.
//
// Scheduling: shards are claimed from per-thread ready queues with
// work stealing — a thread that drains its own stripe steals windows from
// a loaded peer, so shards >> threads no longer serializes behind the
// static stripe. Claiming is an atomic cursor bump per queue (the queues
// are pre-populated each round, so the classic Chase-Lev push/steal races
// don't arise). Which thread runs a window never affects results: the
// shard's trace lane and post() sequence counter travel with the shard,
// and the merge key orders messages independently of the lane they rode.
//
// Merging: cross-shard messages and the per-shard next-event times are
// combined by reduction trees instead of a worker-0 serial loop. Each
// thread sorts its own lane's messages into a run; runs are merged
// pairwise over log2(threads) levels (each level merges two already-sorted
// children); the final run is partitioned by destination and inserted by
// all threads in parallel. The per-shard next-event scan folds the same
// way: each thread publishes a partial min over its contiguous shard
// range, and the round planner combines O(threads) partials instead of
// rescanning O(shards).
//
// Determinism: the merge is canonical — messages sort by (destination,
// time, source shard, source sequence), a total order — so destination
// tie-breaking sequence numbers are assigned in an order independent of
// thread count, lane assignment, stealing, and completion order. Horizons
// are computed only from the published next-event times (deterministic
// simulation state), so the window schedule itself is thread-count
// invariant and a run with `threads = N` is byte-identical to
// `threads = 1` within a given WindowMode. Only lane *spill counts* and
// the *steal count* — wall-clock-side metrics — vary with the thread
// count. The two modes execute different (both deterministic) window
// schedules and may diverge on simultaneous-event tie-breaks, which is why
// baseline-locked benches pin kFixedWindow.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/mailbox.h"
#include "sim/simulator.h"

namespace ecoscale {

/// Thin wrapper over std::barrier<> (defined in parallel.cc so includers
/// don't pull in <barrier>). Null gate = sequential run, no waiting.
class RoundGate;

/// How the engine computes each shard's per-round execution horizon.
enum class WindowMode {
  /// Per-shard horizons from the per-pair latency oracle (see file
  /// comment). The default: strictly more progress per round on
  /// imbalanced topologies, deterministic across thread counts.
  kAdaptive,
  /// One global horizon `min next event + lookahead` for every shard —
  /// the PR-5 window schedule, byte-identical to the engine before
  /// adaptive windows existed. Committed bench baselines pin this mode.
  kFixedWindow,
};

struct ShardedConfig {
  /// Number of event-queue shards (typically one per Compute Node).
  std::size_t shards = 1;
  /// Conservative uniform lookahead: a lower bound on the sim-time
  /// distance of *any* cross-shard interaction. Derive it from the
  /// interconnect (Network::min_cross_latency / PgasSystem::
  /// shard_lookahead). Used directly by kFixedWindow and as the
  /// default pair latency when no oracle is given.
  SimDuration lookahead = nanoseconds(100);
  /// Worker threads; 0 picks std::thread::hardware_concurrency(). The
  /// thread count never changes simulation results, only wall-clock time.
  std::size_t threads = 1;
  /// Ring capacity of each per-thread lane; bursts beyond it spill to a
  /// producer-owned overflow vector (correct but allocating).
  std::size_t mailbox_capacity = 1024;
  WindowMode window_mode = WindowMode::kAdaptive;
  /// Optional per-pair latency oracle L(from, to), e.g. a captured
  /// Network::route_latency. Must be >= 1 for every pair and satisfy the
  /// triangle inequality L(a, c) <= L(a, b) + L(b, c) — true for any
  /// route/shortest-path latency (both strided and seeded-random triples
  /// are checked at construction, so a locally non-metric oracle fails
  /// loudly instead of yielding an unsafe horizon). Tightens both the
  /// adaptive horizons and the post() contract. Unset: the uniform
  /// `lookahead` stands in for every pair.
  std::function<SimDuration(std::size_t from, std::size_t to)> pair_lookahead;
  /// Optional per-source floor min over d != s of L(s, d) (e.g.
  /// Network::min_latency_from). Only consulted when `pair_lookahead` is
  /// set but the shard count exceeds `dense_pair_cap`; below the cap the
  /// floor is derived from the dense matrix. Construction sample-verifies
  /// floor(s) <= L(s, d) against the pair oracle — a floor that exceeds a
  /// real pair latency would silently over-advance shards.
  std::function<SimDuration(std::size_t from)> source_floor;
  /// Shard count up to which the pair oracle is materialized as a dense
  /// matrix (O(shards^2) construction + memory; horizons then take exact
  /// per-destination column minima). Above it the engine falls back to
  /// per-source floors — still adaptive, O(shards) state — so a
  /// 6k-shard machine never pays a 36M-entry matrix.
  std::size_t dense_pair_cap = 512;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedConfig config);
  ~ShardedSimulator();

  std::size_t shard_count() const { return shards_.size(); }
  SimDuration lookahead() const { return config_.lookahead; }
  WindowMode window_mode() const { return config_.window_mode; }
  /// Threads the window loop will actually use (clamped to shard count).
  std::size_t threads_used() const { return threads_; }
  /// The conservative latency bound post() enforces for this pair — the
  /// dense matrix entry, the oracle, or the uniform lookahead.
  SimDuration pair_lookahead(std::size_t from, std::size_t to) const;

  /// Shard-local event queue. Schedule setup events here before run(), or
  /// same-shard events from inside one of the shard's own actions. NEVER
  /// touch another shard's queue from a running action — that is what
  /// post() is for.
  Simulator& shard(std::size_t s) {
    ECO_CHECK(s < shards_.size());
    return shards_[s]->sim;
  }

  /// Deliver `action` on shard `to` at absolute time `t`, called from
  /// inside an action currently executing on shard `from`. Requires
  /// t >= now(from) + pair_lookahead(from, to) — the conservative contract
  /// that keeps windows race-free (kFixedWindow additionally requires the
  /// uniform lookahead). Messages become destination events at the next
  /// round boundary, merged canonically by (time, source shard, seq).
  template <typename F>
  void post(std::size_t from, std::size_t to, SimTime t, F&& action) {
    post_message(from, to, t, InlineAction(std::forward<F>(action)));
  }

  /// Run rounds until every shard queue and every lane is empty.
  /// Rethrows the first (lowest shard id) exception an action threw.
  void run();

  /// Run rounds until the shards drain OR the global next-event floor
  /// reaches `bound`: every event strictly before `bound` executes, events
  /// at or after it stay pending. Returns true when fully drained. Between
  /// calls nothing is running, so a single-threaded controller may read
  /// any shard's deterministic state and schedule new events (including at
  /// times >= bound) before resuming — the epoch pause the runtime
  /// repartitioner is built on (DESIGN.md §7.11). Horizons are the normal
  /// WindowMode horizons clamped to `bound`, still a pure function of the
  /// published next-event times, so the window schedule (and therefore the
  /// simulation) stays byte-identical at any thread count.
  bool run_until(SimTime bound);

  // --- accounting ---------------------------------------------------------
  // The first four are deterministic (thread-count invariant); spills and
  // steals are wall-clock-side.
  /// Synchronization rounds executed so far.
  std::uint64_t windows() const { return windows_; }
  /// (shard, round) pairs that retired at least one event — "windows
  /// executed". windows() * shard_count() minus this minus the stalls is
  /// the idle balance.
  std::uint64_t shard_windows() const { return shard_windows_; }
  /// (shard, round) pairs where a shard had a pending event but its
  /// horizon forbade running it — the barrier-stall numerator. Adaptive
  /// windows exist to shrink this.
  std::uint64_t stalled_shard_windows() const { return stalled_windows_; }
  /// Cross-shard messages routed through the lanes (sum of the per-source
  /// send counters — identical whatever the lane layout).
  std::uint64_t messages() const;
  /// Shard windows claimed by a thread other than the queue owner's.
  /// Wall-clock-side: depends on thread timing, never on results.
  std::uint64_t steals() const { return steals_; }
  /// Pushes that overflowed a lane ring into its spill vector. Lane load
  /// depends on how many shards share a thread, so this varies with the
  /// thread count (simulation results never do).
  std::uint64_t mailbox_spills() const;
  /// Bytes of cross-shard buffering: the per-thread lane rings. O(threads ·
  /// capacity), where the per-pair scheme was O(shards² · capacity).
  std::size_t mailbox_state_bytes() const;
  /// Events retired across all shards.
  std::uint64_t events_processed() const;
  /// Frontier of simulated time: max over the shard clocks.
  SimTime now() const;
  /// Wall time spent retiring events, summed over shards (CPU time, not
  /// elapsed time — shards run concurrently).
  std::uint64_t shard_wall_time_ns() const;

 private:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  struct Shard {
    Simulator sim;
    std::exception_ptr error;
    /// Messages this shard has posted — the `seq` of its next post and the
    /// third key of the canonical merge order. Owned by whichever thread
    /// is executing the shard's window (never two at once).
    std::uint64_t post_seq = 0;
  };

  /// One sorted-run entry of the canonical merge: the full merge key plus
  /// where the message body lives (producing lane, index in that lane's
  /// drain scratch).
  struct MergeItem {
    SimTime time;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;
    std::uint32_t lane;
    std::uint32_t pos;
  };

  /// Per-worker-thread state: the round's ready queue (candidates from the
  /// thread's contiguous shard range; any thread may claim from it), the
  /// lane-drain scratch and merge-run ping-pong buffers, deterministic
  /// per-round tallies and the fold partials the planner combines.
  struct alignas(64) WorkerSlot {
    // Ready queue for the round; claimed via `cursor` (atomic bump — the
    // queues are pre-populated at the previous round boundary, so no
    // concurrent push ever races a steal).
    std::vector<std::uint32_t> queue;
    std::atomic<std::uint32_t> cursor{0};
    // This thread's lane, drained and sorted into a run each round.
    std::vector<ShardMessage> msgs;
    std::vector<MergeItem> run_a, run_b;
    std::vector<MergeItem>* run = nullptr;
    // Deterministic per-round tallies (zeroed by the planner after
    // folding) plus the wall-clock-side steal count.
    std::uint64_t executed = 0;
    std::uint64_t stalled = 0;
    std::uint64_t stolen = 0;
    SimTime min_horizon = kNever;  // trace span end for the round
    // Fold partials over the thread's contiguous shard range: min next
    // event time, and top-2 (value, runner-up, argmin) of
    // next + source_floor for the collapsed adaptive horizon.
    SimTime part_floor = kNever;
    SimTime part_src1 = kNever;
    SimTime part_src2 = kNever;
    std::uint32_t part_src_arg = 0;
  };

  /// The non-template body of post(): validates the calling context and
  /// pushes the fully-tagged message into the executing thread's lane.
  void post_message(std::size_t from, std::size_t to, SimTime t,
                    InlineAction action);

  /// Execute shard `s`'s events strictly before `end` with the post()
  /// calling-context guard armed and `lanes_[lane]` as the outbox.
  /// Exceptions land in the shard's slot.
  void run_shard_window(std::size_t s, SimTime end, std::size_t lane);
  void rethrow_shard_error();

  // --- round phases (see parallel.cc for the barrier schedule) ----------
  /// Reset per-run state: pre-reserve every merge/drain/queue buffer from
  /// the lane capacities (steady state allocates nothing) and seed the
  /// next-event times, ready queues and fold partials.
  void prepare_run();
  /// Worker 0 between rounds: fold the per-thread partials (O(threads),
  /// replacing the old O(shards) rescan), emit the previous round's trace
  /// span/counters, publish the next round's horizons or done.
  void plan_round();
  /// Claim shards (own queue, then steal), run their windows, then drain
  /// and sort this thread's lane into a merge run.
  void execute_round(std::size_t tid);
  /// Pairwise-merge the sorted runs over log2(threads) levels.
  void merge_runs(std::size_t tid, RoundGate* gate);
  /// Insert this thread's destination-partition of the final run, refresh
  /// its shards' next-event times, rebuild its ready queue and partials.
  void insert_and_fold(std::size_t tid, std::size_t total);
  void fold_range(std::size_t tid);
  /// The per-shard execution horizon for this round (see WindowMode).
  SimTime shard_horizon(std::size_t d) const;
  /// One worker's whole round loop; `gate` is null in sequential runs and
  /// `failure` non-null only on parallel worker 0 (plan_round may throw).
  void drive(std::size_t tid, RoundGate* gate, std::exception_ptr* failure);
  void run_parallel();

  ShardedConfig config_;
  std::size_t threads_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShardLane>> lanes_;  // one per worker thread
  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  // Per-pair latency state: dense matrix (shards <= dense_pair_cap with an
  // oracle), the per-source floors used by the collapsed horizon, and the
  // per-destination floors min over b != d of L(b, d) — the echo-cap
  // distance (dense: exact column minima; collapsed: bounded below by the
  // top-2 of the source floors, since L(b, d) >= source_floor_[b]).
  std::vector<SimDuration> pair_matrix_;  // shards x shards, row = source
  std::vector<SimDuration> source_floor_;
  std::vector<SimDuration> dest_floor_;
  // Published next event time per shard (kNever = idle). Written only by
  // the shard-range owner in the fold phase, read by everyone in the next
  // execute phase; the round barriers order the two.
  std::vector<SimTime> next_times_;

  // Round plan, published by worker 0 and read by all workers after the
  // plan barrier (plain fields; the barrier provides the happens-before).
  SimTime plan_floor_ = 0;       // min next event over all shards
  SimTime plan_fixed_end_ = 0;   // kFixedWindow horizon
  SimTime plan_src1_ = kNever;   // top-2 of next_s + source_floor_[s]
  SimTime plan_src2_ = kNever;
  std::uint32_t plan_src_arg_ = 0;
  /// Exclusive stop bound of the current run_until() segment (kNever for
  /// a plain run()). Set before the workers start, cleared after they
  /// join, read inside via plan_round()/shard_horizon() only.
  SimTime run_bound_ = kNever;
  std::atomic<bool> done_{false};

  // Worker-0-only trace bookkeeping: the previous round's span is emitted
  // one plan later, when its min horizon has been folded.
  bool trace_prev_valid_ = false;
  SimTime trace_prev_floor_ = 0;

  std::uint64_t windows_ = 0;
  std::uint64_t shard_windows_ = 0;
  std::uint64_t stalled_windows_ = 0;
  std::uint64_t steals_ = 0;
};

}  // namespace ecoscale
