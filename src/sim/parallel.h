// Conservative parallel discrete-event engine (sharded Simulator).
//
// ECOSCALE's hierarchy bounds communication distance: Workers inside a
// Compute Node interact at L0 latencies while anything that crosses a node
// boundary pays at least the interconnect's minimum inter-node latency.
// That bound makes node boundaries natural parallelization boundaries for
// the simulator — the same decomposition the runtime itself exploits. The
// ShardedSimulator gives every Compute Node (or any caller-chosen
// partition) its own event queue (a full `Simulator` with its slab, 4-ary
// heap and sorted-run backlog) and advances the shards concurrently inside
// synchronization windows:
//
//   window = [T, T + L)   where T = min next event time over all shards
//                         and   L = lookahead (min cross-shard latency)
//
// Within a window every shard executes only its own events, so shards
// share no mutable state and need no locks. A cross-shard interaction is
// an explicit `post(from, to, t, action)` with t >= now(from) + L; the
// message rides the single-producer/single-consumer lane owned by the
// worker thread executing the posting shard (one lane per thread, not one
// mailbox per shard pair — see sim/mailbox.h) and is drained at the window
// barrier. Conservative correctness: a receiver executes events strictly
// before T + L, and any message produced during the window carries
// t >= sender_now + L >= T + L, so no shard can ever receive an event in
// its past.
//
// Determinism: the barrier merge is canonical — pending messages are
// sorted by (destination, time, source shard, source sequence) before
// being enqueued on the destination, so destination tie-breaking sequence
// numbers are assigned in an order independent of thread count, of lane
// assignment, and of completion order. Together with the per-shard
// deterministic queues this makes a run with `threads = N` byte-identical
// to `threads = 1` (which executes the exact same window/merge schedule
// sequentially). Only lane *spill counts* — a wall-clock-side metric —
// vary with the thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/mailbox.h"
#include "sim/simulator.h"

namespace ecoscale {

struct ShardedConfig {
  /// Number of event-queue shards (typically one per Compute Node).
  std::size_t shards = 1;
  /// Conservative lookahead: the minimum sim-time distance of any
  /// cross-shard interaction. Derive it from the interconnect
  /// (Network::min_cross_group_latency / PgasSystem::shard_lookahead).
  SimDuration lookahead = nanoseconds(100);
  /// Worker threads; 0 picks std::thread::hardware_concurrency(). The
  /// thread count never changes simulation results, only wall-clock time.
  std::size_t threads = 1;
  /// Ring capacity of each per-thread lane; bursts beyond it spill to a
  /// producer-owned overflow vector (correct but allocating).
  std::size_t mailbox_capacity = 1024;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedConfig config);

  std::size_t shard_count() const { return shards_.size(); }
  SimDuration lookahead() const { return config_.lookahead; }
  /// Threads the window loop will actually use (clamped to shard count).
  std::size_t threads_used() const { return threads_; }

  /// Shard-local event queue. Schedule setup events here before run(), or
  /// same-shard events from inside one of the shard's own actions. NEVER
  /// touch another shard's queue from a running action — that is what
  /// post() is for.
  Simulator& shard(std::size_t s) {
    ECO_CHECK(s < shards_.size());
    return shards_[s]->sim;
  }

  /// Deliver `action` on shard `to` at absolute time `t`, called from
  /// inside an action currently executing on shard `from`. Requires
  /// t >= now(from) + lookahead — the conservative contract that keeps
  /// windows race-free. Messages become destination events at the next
  /// window barrier, merged canonically by (time, source shard, seq).
  template <typename F>
  void post(std::size_t from, std::size_t to, SimTime t, F&& action) {
    post_message(from, to, t, InlineAction(std::forward<F>(action)));
  }

  /// Run windows until every shard queue and every lane is empty.
  /// Rethrows the first (lowest shard id) exception an action threw.
  void run();

  // --- accounting ---------------------------------------------------------
  /// Synchronization windows executed so far.
  std::uint64_t windows() const { return windows_; }
  /// Cross-shard messages routed through the lanes (sum of the per-source
  /// send counters — identical whatever the lane layout).
  std::uint64_t messages() const;
  /// Pushes that overflowed a lane ring into its spill vector. Lane load
  /// depends on how many shards share a thread, so this varies with the
  /// thread count (simulation results never do).
  std::uint64_t mailbox_spills() const;
  /// Bytes of cross-shard buffering: the per-thread lane rings. O(threads ·
  /// capacity), where the per-pair scheme was O(shards² · capacity).
  std::size_t mailbox_state_bytes() const;
  /// Events retired across all shards.
  std::uint64_t events_processed() const;
  /// Frontier of simulated time: max over the shard clocks.
  SimTime now() const;
  /// Wall time spent retiring events, summed over shards (CPU time, not
  /// elapsed time — shards run concurrently).
  std::uint64_t shard_wall_time_ns() const;

 private:
  struct Shard {
    Simulator sim;
    std::exception_ptr error;
    /// Messages this shard has posted — the `seq` of its next post and the
    /// third key of the canonical merge order. Owned by whichever thread
    /// is executing the shard's window (never two at once).
    std::uint64_t post_seq = 0;
  };

  /// The non-template body of post(): validates the calling context and
  /// pushes the fully-tagged message into the executing thread's lane.
  void post_message(std::size_t from, std::size_t to, SimTime t,
                    InlineAction action);

  /// Drain every lane in canonical merge order, then either publish the
  /// next window (window_end_) or set done_.
  void publish_window();
  void drain_mailboxes();
  /// Execute shard `s`'s events strictly before `end` with the post()
  /// calling-context guard armed and `lanes_[lane]` as the outbox.
  /// Exceptions land in the shard's slot.
  void run_shard_window(std::size_t s, SimTime end, std::size_t lane);
  void rethrow_shard_error();
  void run_sequential();
  void run_parallel();

  ShardedConfig config_;
  std::size_t threads_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShardLane>> lanes_;  // one per worker thread

  // Window state, written by the merge step and read by the window
  // workers. Synchronized by the window barrier; atomics keep every access
  // visibly race-free under TSan as well.
  std::atomic<SimTime> window_end_{0};
  std::atomic<bool> done_{false};

  std::uint64_t windows_ = 0;

  // Merge scratch, reused across windows (no steady-state allocation).
  struct MergeItem {
    SimTime time;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;
    std::uint32_t pos;  // index into merge_msgs_
  };
  std::vector<ShardMessage> merge_msgs_;
  std::vector<MergeItem> merge_order_;
};

}  // namespace ecoscale
