// Machine-wide liveness registry for fault injection & recovery.
//
// One flat entry per Worker, written by the fault injector (runtime layer)
// and read by every subsystem that must route around failures: the
// scheduler (survivor selection, arrival redirect), UNIMEM (page-ownership
// failover when an owning node dies), and UNILOGIC (skip dead or
// blacklisted remote fabrics). Living in common/ keeps the dependency
// arrows pointing downward — unimem/unilogic consume a const view without
// knowing about the runtime that mutates it.
//
// A subsystem holding no registry pointer behaves exactly as before the
// fault layer existed: everything healthy, zero overhead.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace ecoscale {

class HealthRegistry {
 public:
  HealthRegistry() = default;
  HealthRegistry(std::size_t workers, std::size_t workers_per_node) {
    reset(workers, workers_per_node);
  }

  void reset(std::size_t workers, std::size_t workers_per_node) {
    ECO_CHECK(workers_per_node >= 1 && workers % workers_per_node == 0);
    entries_.assign(workers, Entry{});
    workers_per_node_ = workers_per_node;
  }

  std::size_t worker_count() const { return entries_.size(); }

  // --- liveness (fault injector writes, everyone reads) -------------------
  bool up(std::size_t worker) const { return entries_[worker].up; }
  void mark_down(std::size_t worker) { entries_[worker].up = false; }
  void mark_up(std::size_t worker) { entries_[worker].up = true; }

  /// A node is up while any of its workers is: worker crashes leave the
  /// node's memory reachable, a node loss takes every worker down at once.
  bool node_up(std::size_t node) const {
    const std::size_t base = node * workers_per_node_;
    for (std::size_t w = 0; w < workers_per_node_; ++w) {
      if (entries_[base + w].up) return true;
    }
    return false;
  }

  std::size_t up_workers() const {
    std::size_t n = 0;
    for (const Entry& e : entries_) n += e.up ? 1 : 0;
    return n;
  }

  // --- fabric blacklist (UNILOGIC retry escalation) ------------------------
  /// After bounded retries against a failing remote fabric the pool
  /// blacklists it: remote placement skips it until `until`.
  void blacklist(std::size_t worker, SimTime until) {
    Entry& e = entries_[worker];
    if (until > e.blacklist_until) e.blacklist_until = until;
    ++blacklists_;
  }
  bool blacklisted(std::size_t worker, SimTime now) const {
    return now < entries_[worker].blacklist_until;
  }
  std::uint64_t blacklists() const { return blacklists_; }

  /// Usable as a remote target at `now`: alive and not blacklisted.
  bool available(std::size_t worker, SimTime now) const {
    return up(worker) && !blacklisted(worker, now);
  }

 private:
  struct Entry {
    bool up = true;
    SimTime blacklist_until = 0;
  };

  std::vector<Entry> entries_;
  std::size_t workers_per_node_ = 1;
  std::uint64_t blacklists_ = 0;
};

}  // namespace ecoscale
