// Deterministic balanced reduction trees (DESIGN.md §7.8).
//
// Combining N per-shard partials with a serial left fold puts O(N) work on
// one thread and, for floating point, bakes the summation order into the
// result in a way no parallel combiner can reproduce. reduce_tree folds
// over a *balanced binary tree whose shape depends only on N*: left and
// right subtrees split at the midpoint, recursively. Because the shape is a
// pure function of the index range, the result is bit-identical whether the
// subtrees are combined inline or on helper threads — callers can
// parallelize the combine without touching determinism, which is exactly
// the property the sharded engine's cross-thread hash gates demand.
#pragma once

#include <cstddef>
#include <thread>
#include <utility>

namespace ecoscale {

namespace detail {

template <typename T, typename Get, typename Combine>
T reduce_range(std::size_t lo, std::size_t hi, const Get& get,
               const Combine& combine, std::size_t grain) {
  const std::size_t n = hi - lo;
  if (n == 1) return get(lo);
  const std::size_t mid = lo + n / 2;
  if (grain != 0 && n >= grain) {
    // Right subtree on a helper thread; same tree, same result.
    T right{};
    std::thread helper([&] {
      right = reduce_range<T>(mid, hi, get, combine, grain);
    });
    T left = reduce_range<T>(lo, mid, get, combine, grain);
    helper.join();
    return combine(std::move(left), std::move(right));
  }
  T left = reduce_range<T>(lo, mid, get, combine, grain);
  T right = reduce_range<T>(mid, hi, get, combine, grain);
  return combine(std::move(left), std::move(right));
}

}  // namespace detail

/// Fold `count` leaves over a balanced binary tree. `get(i)` produces leaf
/// i, `combine(a, b)` joins two adjacent subtrees (the left argument is
/// always the lower-index one). Subtrees of at least `grain` leaves run on
/// a helper thread; `grain = 0` (the default) keeps everything inline. The
/// tree shape — and therefore the result, including floating-point
/// rounding — depends only on `count`, never on `grain` or thread timing.
template <typename T, typename Get, typename Combine>
T reduce_tree(std::size_t count, T identity, const Get& get,
              const Combine& combine, std::size_t grain = 0) {
  if (count == 0) return identity;
  return detail::reduce_range<T>(0, count, get, combine, grain);
}

}  // namespace ecoscale
