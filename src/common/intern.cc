#include "common/intern.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/check.h"

namespace ecoscale {

namespace {

struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

struct Registry {
  std::mutex mu;
  // deque: references into it survive growth, so name() can hand out
  // stable references without copying.
  std::deque<std::string> names;
  std::unordered_map<std::string_view, CounterId, StringHash,
                     std::equal_to<>>
      ids;  // keys view into `names`
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: ids outlive static dtors
  return *r;
}

}  // namespace

CounterId CounterRegistry::intern(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (auto it = r.ids.find(name); it != r.ids.end()) return it->second;
  const auto id = static_cast<CounterId>(r.names.size());
  r.names.emplace_back(name);
  r.ids.emplace(std::string_view(r.names.back()), id);
  return id;
}

const std::string& CounterRegistry::name(CounterId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ECO_CHECK_MSG(id < r.names.size(), "unknown CounterId");
  return r.names[id];
}

std::size_t CounterRegistry::count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.names.size();
}

}  // namespace ecoscale
