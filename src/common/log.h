// Minimal leveled logging. Off by default so tests and benches stay quiet;
// set ECO_LOG_LEVEL=debug|info|warn in the environment or call
// set_log_level() to enable.
#pragma once

#include <sstream>
#include <string>

namespace ecoscale {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_line(LogLevel level, const std::string& msg);

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace ecoscale

#define ECO_LOG(level_enum)                                           \
  if (::ecoscale::log_level() > ::ecoscale::LogLevel::level_enum) {   \
  } else                                                              \
    ::ecoscale::internal::LogMessage(::ecoscale::LogLevel::level_enum)

#define ECO_DEBUG ECO_LOG(kDebug)
#define ECO_INFO ECO_LOG(kInfo)
#define ECO_WARN ECO_LOG(kWarn)
