// String interning for hot-path accounting categories.
//
// Energy and stat categories ("dram.access", "net.read", "pgas.remote.load")
// are fixed small vocabularies, but the meters used to key them by
// std::string and pay a string hash or tree walk per charge — on the
// per-access fast path. A CounterId is the category's process-wide
// small-integer handle: components resolve their categories once (at
// construction or via a function-local static) and charge dense arrays by
// index afterwards. The registry is append-only and thread-safe; ids are
// stable for the lifetime of the process.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ecoscale {

using CounterId = std::uint32_t;

class CounterRegistry {
 public:
  /// Resolve `name` to its id, registering it on first use. Thread-safe;
  /// O(1) amortized. Call once per category and cache the result — this is
  /// the slow lane, not the per-charge path.
  static CounterId intern(std::string_view name);

  /// Name of a previously interned id. Thread-safe; the reference stays
  /// valid for the process lifetime (names are never freed or moved).
  static const std::string& name(CounterId id);

  /// Number of categories interned so far.
  static std::size_t count();
};

}  // namespace ecoscale
