// Aligned plain-text tables: the output format of every bench harness.
//
// Each experiment binary prints one or more tables whose rows correspond to
// the series recorded in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ecoscale {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; cells are pre-formatted strings (use cell() helpers below).
  Table& add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by bench binaries.
std::string fmt_u64(std::uint64_t v);
std::string fmt_fixed(double v, int digits = 2);
std::string fmt_sci(double v, int digits = 2);
std::string fmt_ratio(double v, int digits = 2);   // "3.14x"
std::string fmt_pct(double frac, int digits = 1);  // 0.42 -> "42.0%"
std::string fmt_bytes(double bytes);               // human-readable
std::string fmt_time_ps(double ps);                // picoseconds, scaled
std::string fmt_energy_pj(double pj);              // picojoules, scaled

}  // namespace ecoscale
