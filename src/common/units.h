// Strongly named scalar units used across the ECOSCALE simulator.
//
// All simulated time is kept in integer picoseconds so that event ordering is
// exact and deterministic; energy is kept in double picojoules (energy is
// only ever accumulated and reported, never used for ordering).
#pragma once

#include <cstdint>

namespace ecoscale {

/// Simulated time in picoseconds.
using SimTime = std::uint64_t;

/// Durations share the representation of absolute times.
using SimDuration = std::uint64_t;

inline constexpr SimDuration kPicosecond = 1;
inline constexpr SimDuration kNanosecond = 1000;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration picoseconds(std::uint64_t n) { return n; }
constexpr SimDuration nanoseconds(std::uint64_t n) { return n * kNanosecond; }
constexpr SimDuration microseconds(std::uint64_t n) { return n * kMicrosecond; }
constexpr SimDuration milliseconds(std::uint64_t n) { return n * kMillisecond; }

constexpr double to_nanoseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosecond);
}
constexpr double to_microseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double to_milliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Bytes.
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes kibibytes(std::uint64_t n) { return n * kKiB; }
constexpr Bytes mebibytes(std::uint64_t n) { return n * kMiB; }

/// Energy in picojoules.
using Picojoules = double;

inline constexpr Picojoules kNanojoule = 1e3;
inline constexpr Picojoules kMicrojoule = 1e6;
inline constexpr Picojoules kMillijoule = 1e9;

constexpr double to_nanojoules(Picojoules e) { return e / kNanojoule; }
constexpr double to_microjoules(Picojoules e) { return e / kMicrojoule; }
constexpr double to_millijoules(Picojoules e) { return e / kMillijoule; }

/// Bandwidth expressed as picoseconds needed per byte.
struct Bandwidth {
  double ps_per_byte = 0.0;

  static constexpr Bandwidth from_gib_per_s(double gib_s) {
    // 1 GiB/s == (1e12 ps/s) / (1 GiB) per byte.
    return Bandwidth{1e12 / (gib_s * static_cast<double>(kGiB))};
  }

  constexpr SimDuration transfer_time(Bytes n) const {
    return static_cast<SimDuration>(ps_per_byte * static_cast<double>(n));
  }
};

}  // namespace ecoscale
