#include "common/log.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace ecoscale {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("ECO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  return LogLevel::kOff;
}

LogLevel& level_storage() {
  static LogLevel level = initial_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage(); }

void set_log_level(LogLevel level) { level_storage() = level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::cerr << "[eco:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace ecoscale
