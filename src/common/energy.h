// Per-component energy accounting.
//
// Every simulated component owns an EnergyMeter and charges picojoules to
// named categories (e.g. "dram.read", "link.hop", "fabric.config"); the
// experiment harnesses aggregate meters into the energy columns reported in
// EXPERIMENTS.md.
#pragma once

#include <map>
#include <string>

#include "common/units.h"

namespace ecoscale {

class EnergyMeter {
 public:
  void charge(const std::string& category, Picojoules pj) {
    by_category_[category] += pj;
    total_ += pj;
  }

  Picojoules total() const { return total_; }

  Picojoules category(const std::string& name) const {
    auto it = by_category_.find(name);
    return it == by_category_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, Picojoules>& breakdown() const {
    return by_category_;
  }

  void merge(const EnergyMeter& other) {
    for (const auto& [k, v] : other.by_category_) by_category_[k] += v;
    total_ += other.total_;
  }

  void clear() {
    by_category_.clear();
    total_ = 0.0;
  }

 private:
  std::map<std::string, Picojoules> by_category_;
  Picojoules total_ = 0.0;
};

}  // namespace ecoscale
