// Per-component energy accounting.
//
// Every simulated component owns an EnergyMeter and charges picojoules to
// named categories (e.g. "dram.read", "link.hop", "fabric.config"); the
// experiment harnesses aggregate meters into the energy columns reported in
// EXPERIMENTS.md.
//
// Categories are interned CounterIds (common/intern.h): the hot lane is
// charge(CounterId, pj) against a dense array, resolved once at component
// construction; charge(name, pj) stays available for cold paths and interns
// on the fly. The string-keyed breakdown is materialized only on read.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/intern.h"
#include "common/units.h"

namespace ecoscale {

class EnergyMeter {
 public:
  /// Fast lane: charge a pre-interned category. Allocation-free once the
  /// dense array covers `id` (i.e. after the first charge of that id).
  void charge(CounterId id, Picojoules pj) {
    if (id >= values_.size()) grow(id);
    values_[id] += pj;
    touched_[id] = 1;
    total_ += pj;
  }

  /// Slow lane for cold call sites: interns `category` per call.
  void charge(std::string_view category, Picojoules pj) {
    charge(CounterRegistry::intern(category), pj);
  }

  Picojoules total() const { return total_; }

  Picojoules category(std::string_view name) const {
    const CounterId id = CounterRegistry::intern(name);
    return id < values_.size() ? values_[id] : 0.0;
  }

  /// String-keyed view, materialized on demand (read path only).
  std::map<std::string, Picojoules> breakdown() const {
    std::map<std::string, Picojoules> out;
    for (CounterId id = 0; id < values_.size(); ++id) {
      if (touched_[id]) out.emplace(CounterRegistry::name(id), values_[id]);
    }
    return out;
  }

  void merge(const EnergyMeter& other) {
    if (other.values_.size() > values_.size()) {
      grow(static_cast<CounterId>(other.values_.size()) - 1);
    }
    for (CounterId id = 0; id < other.values_.size(); ++id) {
      if (other.touched_[id]) {
        values_[id] += other.values_[id];
        touched_[id] = 1;
      }
    }
    total_ += other.total_;
  }

  void clear() {
    values_.assign(values_.size(), 0.0);
    touched_.assign(touched_.size(), 0);
    total_ = 0.0;
  }

 private:
  void grow(CounterId id) {
    values_.resize(id + 1, 0.0);
    touched_.resize(id + 1, 0);
  }

  // Dense by CounterId; `touched_` distinguishes "charged 0 pJ" from
  // "never charged" so breakdown() matches the old string-keyed map.
  std::vector<Picojoules> values_;
  std::vector<unsigned char> touched_;
  Picojoules total_ = 0.0;
};

}  // namespace ecoscale
