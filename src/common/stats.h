// Streaming statistics and histograms for experiment reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/intern.h"

namespace ecoscale {

/// Welford streaming mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of samples with exact percentiles. For simulator-sized sample
/// counts (<= millions) exact storage is fine and avoids sketch error.
class Samples {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  std::size_t count() const { return values_.size(); }
  double percentile(double p) const;  // p in [0, 100]
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }
  void clear() { values_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Streaming quantile estimation without sample storage: the P² algorithm
/// (Jain & Chlamtac 1985). Five markers track the target quantile and its
/// neighbourhood; memory is O(1) and estimates converge for stationary
/// streams. Robust statistics built on this (median, IQR) resist the
/// outliers that contaminate mean/stddev.
class QuantileEstimator {
 public:
  /// `q` in (0, 1), e.g. 0.5 for the median.
  explicit QuantileEstimator(double q);

  void add(double x);
  std::size_t count() const { return n_; }

  /// Current estimate. Exact while fewer than 5 samples have been seen.
  double value() const;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {0, 0, 0, 0, 0};
  double increments_[5] = {0, 0, 0, 0, 0};
};

/// Named monotonically increasing counters (traffic bytes, messages, hits…).
/// Same fast-lane discipline as EnergyMeter: interned CounterIds index a
/// dense array; the string-keyed view is materialized only on read.
class CounterSet {
 public:
  /// Fast lane: pre-interned id, dense array bump.
  void add(CounterId id, std::uint64_t delta = 1);

  /// Slow lane: interns `name` per call.
  void add(std::string_view name, std::uint64_t delta = 1) {
    add(CounterRegistry::intern(name), delta);
  }

  std::uint64_t get(CounterId id) const {
    return id < counters_.size() ? counters_[id] : 0;
  }
  std::uint64_t get(std::string_view name) const {
    return get(CounterRegistry::intern(name));
  }

  /// String-keyed view, materialized on demand (read path only).
  std::map<std::string, std::uint64_t> all() const;

  void clear() {
    counters_.assign(counters_.size(), 0);
    touched_.assign(touched_.size(), 0);
  }

 private:
  std::vector<std::uint64_t> counters_;  // dense by CounterId
  std::vector<unsigned char> touched_;
};

}  // namespace ecoscale
