// Allocation-free log-bucketed latency histogram.
//
// Serving benches need tail percentiles (p50/p99/p999) over millions of
// per-request sim-time latencies. Samples (common/stats.h) keeps every
// value and sorts at query time — exact, but O(n) memory and an
// allocation per record, which the "millions of users" load generators
// cannot afford. LatencyHistogram is the HDR-histogram shape instead: a
// fixed std::array of counters indexed by (octave, sub-bucket), so
// record() is a few bit operations and one increment, memory is ~15 KiB
// regardless of sample count, and merge across per-node recorders is a
// counter-wise add. Relative quantile error is bounded by 2^-kSubBits
// (~3% at the default 5 sub-bucket bits); min/max/sum/count stay exact.
//
// Everything is deterministic: identical record() sequences (in any
// order — the histogram is order-free) produce identical percentiles and
// an identical fingerprint(), which is what lets serve benches gate
// `--sim-threads N` against 1 with byte-equal hashes.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace ecoscale {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear buckets per power of two.
  static constexpr unsigned kSubBits = 5;
  static constexpr unsigned kSub = 1u << kSubBits;
  /// Octave 0 covers [0, kSub) exactly; octaves 1.. cover the remaining
  /// 64 - kSubBits bit positions with kSub sub-buckets each.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(64 - kSubBits + 1) * kSub;

  void record(std::uint64_t v) {
    ++buckets_[index_of(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at percentile p (0 < p <= 100): the smallest bucket whose
  /// cumulative count reaches ceil(p/100 * count). The returned value is
  /// the bucket's lower bound clamped to [min, max], so percentile(100)
  /// == max() exactly and low percentiles never under-run min().
  ///
  /// The rank is computed in exact integer arithmetic: p is snapped to
  /// parts-per-1e7 (1e-5 percent resolution, so p999 == 99.9 is exact)
  /// and the ceiling is an integer division. The previous
  /// `frac * count + 0.9999999` double expression could shift the rank by
  /// a sample once counts grow past the point where `frac * count` picks
  /// up rounding error (~2^23 samples), and the ad-hoc epsilon was never
  /// an exact ceil at boundary ranks.
  std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    constexpr std::uint64_t kDen = 10'000'000;  // percent in units of 1e-5
    const double clamped = std::clamp(p, 0.0, 100.0);
    const auto num =
        static_cast<std::uint64_t>(clamped * 100'000.0 + 0.5);  // <= kDen
    // ceil(count * num / kDen) without overflow: split count into
    // quotient/remainder by kDen. q * num <= count * (num / kDen) <= count,
    // and r * num < kDen^2 = 1e14, so both terms fit in 64 bits.
    const std::uint64_t q = count_ / kDen;
    const std::uint64_t r = count_ % kDen;
    std::uint64_t target = q * num + (r * num + kDen - 1) / kDen;
    target = std::clamp<std::uint64_t>(target, 1, count_);
    // The top rank is the maximum sample, which is tracked exactly —
    // don't round it down to its bucket's lower bound.
    if (target == count_) return max_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        return std::clamp(bucket_low(i), min_, max_);
      }
    }
    return max_;
  }

  /// Counter-wise add; equivalent to having recorded both streams into
  /// one histogram (record order never matters).
  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_) min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void reset() { *this = LatencyHistogram{}; }

  /// FNV-1a over the full bucket array plus the exact aggregates — equal
  /// iff the recorded multiset of (bucketized) values is equal. Used by
  /// determinism gates.
  std::uint64_t fingerprint() const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xFF;
        h *= 1099511628211ull;
      }
    };
    for (const std::uint64_t c : buckets_) mix(c);
    mix(count_);
    mix(sum_);
    mix(count_ ? min_ : 0);
    mix(max_);
    return h;
  }

  /// Bucket index for a value: exact below kSub, then (octave,
  /// sub-bucket) with the sub-bucket taken from the bits just below the
  /// leading one.
  static std::size_t index_of(std::uint64_t v) {
    const unsigned msb =
        63u - static_cast<unsigned>(std::countl_zero(v | 1));
    if (msb < kSubBits) return static_cast<std::size_t>(v);
    const unsigned shift = msb - kSubBits;
    const auto sub = static_cast<unsigned>((v >> shift) & (kSub - 1));
    return (static_cast<std::size_t>(msb - kSubBits + 1) << kSubBits) + sub;
  }

  /// Smallest value mapping to bucket `idx` (inverse of index_of).
  static std::uint64_t bucket_low(std::size_t idx) {
    if (idx < kSub) return idx;
    const auto oct = static_cast<unsigned>(idx >> kSubBits);  // >= 1
    const auto sub = static_cast<unsigned>(idx & (kSub - 1));
    const unsigned shift = oct - 1;
    return ((std::uint64_t{1} << kSubBits) | sub) << shift;
  }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace ecoscale
