// Lightweight precondition / invariant checking.
//
// ECO_CHECK is always on (simulator correctness beats the tiny cost); a
// failed check throws ecoscale::CheckError so tests can assert on misuse of
// the public API.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ecoscale {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "ECO_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace ecoscale

#define ECO_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) ::ecoscale::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define ECO_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream eco_check_os;                                \
      eco_check_os << msg;                                            \
      ::ecoscale::check_failed(#expr, __FILE__, __LINE__,             \
                               eco_check_os.str());                   \
    }                                                                 \
  } while (false)
