#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace ecoscale {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ECO_CHECK(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  ECO_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, table has "
                           << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

std::string fmt_fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_sci(double v, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_ratio(double v, int digits) { return fmt_fixed(v, digits) + "x"; }

std::string fmt_pct(double frac, int digits) {
  return fmt_fixed(frac * 100.0, digits) + "%";
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_fixed(bytes, bytes < 10 ? 2 : 1) + " " + units[u];
}

std::string fmt_time_ps(double ps) {
  const char* units[] = {"ps", "ns", "us", "ms", "s"};
  int u = 0;
  while (ps >= 1000.0 && u < 4) {
    ps /= 1000.0;
    ++u;
  }
  return fmt_fixed(ps, ps < 10 ? 2 : 1) + " " + units[u];
}

std::string fmt_energy_pj(double pj) {
  const char* units[] = {"pJ", "nJ", "uJ", "mJ", "J"};
  int u = 0;
  while (pj >= 1000.0 && u < 4) {
    pj /= 1000.0;
    ++u;
  }
  return fmt_fixed(pj, pj < 10 ? 2 : 1) + " " + units[u];
}

}  // namespace ecoscale
