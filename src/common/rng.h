// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 with std::uniform_int_distribution — produces identical
// sequences on every platform, which keeps experiment output reproducible.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ecoscale {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the scalar seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    ECO_CHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ECO_CHECK(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Uniform real in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    ECO_CHECK(mean > 0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple and exact).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  /// Poisson with the given mean, truncated to [0, bound]. Knuth's
  /// product method — exact for the small means load generators use
  /// (burst sizes, per-tick arrivals); the bound keeps a pathological
  /// mean from spinning the loop or overflowing downstream buffers.
  std::uint64_t bounded_poisson(double mean, std::uint64_t bound) {
    ECO_CHECK(mean >= 0);
    ECO_CHECK(bound > 0);
    if (mean <= 0.0) return 0;
    const double limit = std::exp(-std::min(mean, 700.0));
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      p *= uniform();
      if (p <= limit) break;
      ++k;
    } while (k < bound);
    return std::min(k, bound);
  }

  /// Zipf-distributed rank in [0, n) with skew s (s = 0 → uniform).
  /// Used for skewed page/accelerator popularity in sharing experiments.
  std::size_t zipf(std::size_t n, double s) {
    ECO_CHECK(n > 0);
    if (s <= 0.0) return static_cast<std::size_t>(uniform_u64(n));
    // Inverse-CDF on the (cached) harmonic weights would need state per
    // (n, s); for simulator workloads n is small, so recompute lazily.
    if (zipf_n_ != n || zipf_s_ != s) {
      zipf_cdf_.resize(n);
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        zipf_cdf_[i] = sum;
      }
      for (auto& v : zipf_cdf_) v /= sum;
      zipf_n_ = n;
      zipf_s_ = s;
    }
    const double u = uniform();
    const auto it =
        std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return static_cast<std::size_t>(it - zipf_cdf_.begin());
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_u64(i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  std::vector<double> zipf_cdf_;
  std::size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
};

/// Zipfian rank sampler with the CDF built once at construction. Unlike
/// Rng::zipf — which caches per Rng instance and rebuilds whenever (n, s)
/// changes — one ZipfSampler can serve many per-node Rng streams without
/// redundant harmonic sums, which matters when a load generator runs one
/// decorrelated stream per origin node over the same key population.
/// Sampling is O(log n) (binary search on the CDF) and allocation-free.
class ZipfSampler {
 public:
  /// Ranks in [0, n), skew s >= 0 (s = 0 → uniform).
  ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
    ECO_CHECK(n > 0);
    if (s_ <= 0.0) return;  // uniform fallback needs no table
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s_);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  std::size_t operator()(Rng& rng) const {
    if (s_ <= 0.0) return static_cast<std::size_t>(rng.uniform_u64(n_));
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

  std::size_t n() const { return n_; }
  double skew() const { return s_; }

 private:
  std::size_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace ecoscale
