#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ecoscale {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Samples::percentile(double p) const {
  ECO_CHECK_MSG(!values_.empty(), "percentile of empty sample set");
  ECO_CHECK(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (values_.size() == 1) return values_.front();
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

QuantileEstimator::QuantileEstimator(double q) : q_(q) {
  ECO_CHECK(q > 0.0 && q < 1.0);
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q / 2;
  increments_[2] = q;
  increments_[3] = (1 + q) / 2;
  increments_[4] = 1;
}

void QuantileEstimator::add(double x) {
  ++n_;
  if (n_ <= 5) {
    heights_[n_ - 1] = x;
    if (n_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  // Find the cell containing x and clamp the extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  // Adjust interior markers with parabolic (or linear) interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double dp = positions_[i + 1] - positions_[i];
    const double dm = positions_[i - 1] - positions_[i];
    if ((d >= 1 && dp > 1) || (d <= -1 && dm < -1)) {
      const double sign = d >= 1 ? 1.0 : -1.0;
      // Parabolic prediction.
      const double hp = (heights_[i + 1] - heights_[i]) / dp;
      const double hm = (heights_[i - 1] - heights_[i]) / dm;
      const double candidate =
          heights_[i] + sign / (dp - dm) *
                            ((sign - dm) * hp + (dp - sign) * hm);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Linear fallback.
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double QuantileEstimator::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact small-sample quantile (sorted copy of the prefix).
    double tmp[5];
    std::copy(heights_, heights_ + n_, tmp);
    std::sort(tmp, tmp + n_);
    const double rank = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, n_ - 1);
    return tmp[lo] + (rank - static_cast<double>(lo)) * (tmp[hi] - tmp[lo]);
  }
  return heights_[2];
}

void CounterSet::add(CounterId id, std::uint64_t delta) {
  if (id >= counters_.size()) {
    counters_.resize(id + 1, 0);
    touched_.resize(id + 1, 0);
  }
  counters_[id] += delta;
  touched_[id] = 1;
}

std::map<std::string, std::uint64_t> CounterSet::all() const {
  std::map<std::string, std::uint64_t> out;
  for (CounterId id = 0; id < counters_.size(); ++id) {
    if (touched_[id]) out.emplace(CounterRegistry::name(id), counters_[id]);
  }
  return out;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

}  // namespace ecoscale
