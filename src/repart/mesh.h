// Unstructured-mesh workload for the repartitioning benchmarks.
//
// A ring of cells with seeded random chords — the 1-D skeleton of an
// unstructured CFD mesh: mostly short-range adjacency plus a sprinkling
// of longer-range couplings. Each node runs self-paced *step* events: it
// updates every cell it owns inside the current activity window and reads
// each neighbor's halo value, paying a remote-read cost (and shipping a
// halo notification over the inter-node fabric) whenever the neighbor
// lives elsewhere. The activity window is a front that sweeps the ring as
// a function of *simulated time* — like a shock or flame front moving
// through a mesh — so the hot region migrates across the initial
// contiguous partition and a static placement degrades mid-run while a
// reactive one follows the front.
//
// Determinism: per-node state is shard-owned, the front position is a
// pure function of simulated time, the chord graph is seeded, and halo
// notifications ride the engine's deterministic cross-shard mailboxes —
// the report fingerprint is byte-identical at any --sim-threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "repart/repart.h"

namespace ecoscale {
class ShardedRuntime;
}

namespace ecoscale::repart {

struct MeshConfig {
  std::size_t cells = 2048;
  /// Extra random short-range edges on top of the ring.
  std::size_t chords = 1024;
  /// Maximum ring distance a chord may span.
  std::size_t chord_span = 16;
  std::uint64_t seed = 1234;

  /// Fixed cost of one step event (pacing), plus per-owned-active-cell
  /// update cost and per-remote-halo-read penalty.
  SimDuration step_base = nanoseconds(400);
  SimDuration cell_cost = nanoseconds(40);
  SimDuration remote_read_cost = nanoseconds(6);

  /// Bytes per halo value (access weighting + byte-hop accounting) and
  /// bytes of state that travel when a cell migrates.
  std::uint64_t halo_bytes = 8;
  std::uint64_t cell_state_bytes = 512;

  /// Fraction of the ring active at once, and the simulated time the
  /// front takes to lap the ring (0 = stationary front at cell 0).
  double front_width = 0.10;
  SimDuration front_period = 0;

  /// Steps schedule themselves until this simulated horizon.
  SimDuration duration = microseconds(600);
};

/// The mesh as a RepartClient: cells are the items. Without a
/// repartitioner it runs on a fixed contiguous partition.
class MeshWorkload : public RepartClient {
 public:
  /// `repart` may be null (static partitioning). When set, its item count
  /// must equal cfg.cells and the workload records into its tracker.
  MeshWorkload(ShardedRuntime& rt, Repartitioner* repart, MeshConfig cfg);

  /// The canonical initial placement: contiguous ring blocks, one per
  /// node — also what the Repartitioner should be constructed with.
  static std::vector<std::uint32_t> contiguous_owners(std::size_t cells,
                                                      std::size_t nodes);

  /// Schedule step 0 on every node. Call before rt.run().
  void start();

  // RepartClient
  std::uint64_t item_bytes(std::uint32_t) const override {
    return cfg_.cell_state_bytes;
  }
  void migrate_item(std::uint32_t item, std::uint32_t from, std::uint32_t to,
                    SimTime at) override;

  struct Report {
    std::uint64_t updates = 0;       // cell updates executed
    std::uint64_t steps = 0;         // step events across nodes
    std::uint64_t remote_reads = 0;  // halo reads crossing nodes
    std::uint64_t total_reads = 0;   // all halo reads
    std::uint64_t halo_byte_hops = 0;
    std::uint64_t halo_in = 0;       // halo notifications received
    std::uint64_t migrations_in = 0;
    SimTime finish = 0;              // last step completion
    std::uint64_t fingerprint = 0;   // state hash (+ plan hash if reactive)
    double updates_per_sec = 0.0;
    double remote_read_rate = 0.0;   // remote_reads / total_reads
  };
  /// Deterministic fold over per-node state (call after rt.run()).
  Report report() const;

 private:
  std::uint64_t front_center(SimTime t) const;
  void step(std::size_t node, SimTime now);
  std::uint32_t cell_owner(std::uint32_t cell) const {
    return repart_ != nullptr ? repart_->owner(cell) : static_owner_[cell];
  }

  struct alignas(64) NodeState {
    std::uint64_t updates = 0;
    std::uint64_t steps = 0;
    std::uint64_t remote_reads = 0;
    std::uint64_t total_reads = 0;
    std::uint64_t halo_byte_hops = 0;
    std::uint64_t halo_in = 0;
    std::uint64_t migrations_in = 0;
    /// Settle charge from inbound migrations, absorbed by the next step.
    SimDuration migrate_backlog = 0;
    SimTime finish = 0;
    /// Per-step remote-halo tally per peer (scratch, shard-owned).
    std::vector<std::uint32_t> peer;
  };

  ShardedRuntime& rt_;
  Repartitioner* repart_;
  MeshConfig cfg_;
  std::vector<std::uint32_t> static_owner_;
  // CSR adjacency (ring + chords), neighbor lists sorted ascending.
  std::vector<std::uint32_t> nbr_offset_;
  std::vector<std::uint32_t> nbr_;
  std::vector<NodeState> nodes_;
};

}  // namespace ecoscale::repart
