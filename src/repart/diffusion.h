// Hierarchical diffusion load balancing over the machine tree.
//
// The scheme of Mohanamuraly & Staffelbach (arXiv:2008.00832): instead of
// one flat global balance step, load diffuses between *siblings* at each
// tier of the interconnect hierarchy, top-down — first across the root's
// child subtrees (the expensive tier, so flows there are damped the same
// way as everywhere else but settle the coarse imbalance), then within
// each subtree across its children, down to individual Compute Nodes.
// Transfers therefore resolve as locally as the imbalance allows: a hot
// chassis first sheds to its sibling chassis as an aggregate, and only the
// net flow crosses the expensive upper links, while intra-chassis churn
// stays on cheap ones.
//
// The tiers come straight from the Network's implicit-tree arrays
// (tree_parent/tree_depth — the same per-vertex state implicit LCA routing
// uses), so the diffusion hierarchy is always the machine's real topology,
// never a hand-maintained copy.
//
// Everything here is a pure function of its inputs — fixed iteration
// order, no RNG, no wall clock — which is what lets the repartitioner
// promise byte-identical plans at any --sim-threads (DESIGN.md §7.11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecoscale {
class Network;
}

namespace ecoscale::repart {

/// The sibling-group structure of the node-level tree. Tier t partitions
/// the node ids by their depth-t ancestor: tier 0 is always the single
/// root group, the last tier is always the singleton partition (every
/// node its own group — the leaves themselves). A two-chassis machine
/// {4, 2} has three tiers: {all 8}, {chassis A, chassis B}, {8 x 1}.
struct TreeLevels {
  std::size_t nodes = 0;
  /// group_of[t][n] — node n's group id within tier t. Group ids are
  /// dense, assigned in node order (deterministic).
  std::vector<std::vector<std::uint32_t>> group_of;
  /// Number of groups in each tier.
  std::vector<std::size_t> group_count;

  std::size_t tier_count() const { return group_of.size(); }

  /// Build from the interconnect's implicit tree (requires
  /// net.implicit_routing(), true for every ShardedRuntime interconnect).
  static TreeLevels from_network(Network& net, std::size_t nodes);
};

/// One epoch of hierarchical diffusion: returns the per-node target load.
/// At each tier top-down, a parent group's aggregate target splits over
/// its child groups by moving each child a fraction `alpha` from its
/// current share toward its capacity-proportional share (alpha = 1 jumps
/// straight to proportional; small alpha trickles, the damping that keeps
/// the balancer from thrashing on transient spikes). Load is conserved
/// exactly at every tier; a group whose aggregate capacity is zero (all
/// workers believed down) falls back to equal child shares.
std::vector<double> diffusion_targets(const TreeLevels& levels,
                                      const std::vector<double>& load,
                                      const std::vector<double>& capacity,
                                      double alpha);

}  // namespace ecoscale::repart
