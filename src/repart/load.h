// Windowed load vectors for the online repartitioner.
//
// Per-shard, shard-owned counters: an event executing on node n's shard
// records accesses and work into slot n only, so there is never a write
// race — the same single-writer discipline every deterministic counter in
// this codebase follows. The repartitioner folds and resets the windows
// from the epoch pause (no shard running), so reads are ordered against
// the writes by the engine's segment boundaries and the folded vectors
// are a pure function of simulation state.
//
// Layout: access[item * nodes + origin] — how much traffic `item`
// received on behalf of node `origin` this window (bytes-weighted), the
// affinity signal locality moves follow; work[item] — the service cost
// `item` generated this window, the mass hierarchical diffusion balances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ecoscale::repart {

class LoadTracker {
 public:
  LoadTracker(std::size_t nodes, std::size_t items)
      : nodes_(nodes), items_(items), shards_(nodes) {
    for (Slot& s : shards_) {
      s.access.assign(items * nodes, 0);
      s.work.assign(items, 0);
    }
  }

  std::size_t nodes() const { return nodes_; }
  std::size_t items() const { return items_; }

  /// Record `weight` (typically bytes) of traffic to `item`, executed on
  /// node `at_node`'s shard on behalf of node `origin`. Only events
  /// running on that shard may pass its id.
  void record_access(std::size_t at_node, std::uint32_t item,
                     std::uint32_t origin, std::uint64_t weight) {
    ECO_CHECK(at_node < nodes_ && item < items_ && origin < nodes_);
    shards_[at_node].access[item * nodes_ + origin] += weight;
  }

  /// Record `cost` units of service work attributed to `item`, executed
  /// on node `at_node`'s shard.
  void record_work(std::size_t at_node, std::uint32_t item,
                   std::uint64_t cost) {
    ECO_CHECK(at_node < nodes_ && item < items_);
    shards_[at_node].work[item] += cost;
  }

  /// Folded window: per-item work and per-(item, origin) access.
  struct Window {
    std::vector<std::uint64_t> access;  // items x nodes
    std::vector<std::uint64_t> work;    // items
  };

  /// Fold every shard's window into `out` and zero the shard counters.
  /// Controller-only: call with no shard running (an epoch pause).
  /// Integer sums in fixed shard order — deterministic by construction.
  void collect(Window& out) {
    out.access.assign(items_ * nodes_, 0);
    out.work.assign(items_, 0);
    for (Slot& s : shards_) {
      for (std::size_t i = 0; i < s.access.size(); ++i) {
        out.access[i] += s.access[i];
        s.access[i] = 0;
      }
      for (std::size_t i = 0; i < s.work.size(); ++i) {
        out.work[i] += s.work[i];
        s.work[i] = 0;
      }
    }
  }

 private:
  /// Cache-line aligned so two shards' hot counters never share a line.
  struct alignas(64) Slot {
    std::vector<std::uint64_t> access;
    std::vector<std::uint64_t> work;
  };

  std::size_t nodes_;
  std::size_t items_;
  std::vector<Slot> shards_;
};

}  // namespace ecoscale::repart
