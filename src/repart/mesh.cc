#include "repart/mesh.h"

#include <algorithm>

#include "common/check.h"
#include "common/reduce.h"
#include "common/rng.h"
#include "interconnect/network.h"
#include "obs/trace.h"
#include "runtime/sharded.h"
#include "sim/simulator.h"

namespace ecoscale::repart {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::uint64_t fnv_word(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

struct MeshTraceNames {
  CounterId settle = CounterRegistry::intern("repart.settle");
};
const MeshTraceNames& mesh_names() {
  static const MeshTraceNames names;
  return names;
}

constexpr std::uint16_t kSettleTid = 0xFFE1;

}  // namespace

std::vector<std::uint32_t> MeshWorkload::contiguous_owners(std::size_t cells,
                                                           std::size_t nodes) {
  std::vector<std::uint32_t> owner(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    owner[c] = static_cast<std::uint32_t>(c * nodes / cells);
  }
  return owner;
}

MeshWorkload::MeshWorkload(ShardedRuntime& rt, Repartitioner* repart,
                           MeshConfig cfg)
    : rt_(rt), repart_(repart), cfg_(cfg) {
  const std::size_t cells = cfg_.cells;
  const std::size_t n = rt_.node_count();
  ECO_CHECK(cells >= n && n >= 1);
  if (repart_ != nullptr) {
    ECO_CHECK_MSG(repart_->item_count() == cells,
                  "repartitioner items must be the mesh cells");
    repart_->set_client(this);
  }
  static_owner_ = contiguous_owners(cells, n);

  // Ring edges plus seeded random chords of bounded ring span. Undirected:
  // both endpoints read each other's halo.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(cells + cfg_.chords);
  for (std::uint32_t c = 0; c < cells; ++c) {
    edges.emplace_back(c, static_cast<std::uint32_t>((c + 1) % cells));
  }
  Rng rng(cfg_.seed);
  for (std::size_t i = 0; i < cfg_.chords; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_u64(cells));
    const std::uint64_t span =
        2 + rng.uniform_u64(std::max<std::size_t>(cfg_.chord_span, 1));
    const auto b = static_cast<std::uint32_t>((a + span) % cells);
    if (a != b) edges.emplace_back(a, b);
  }
  std::vector<std::uint32_t> degree(cells, 0);
  for (const auto& [a, b] : edges) {
    ++degree[a];
    ++degree[b];
  }
  nbr_offset_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    nbr_offset_[c + 1] = nbr_offset_[c] + degree[c];
  }
  nbr_.resize(nbr_offset_.back());
  std::vector<std::uint32_t> fill = nbr_offset_;
  for (const auto& [a, b] : edges) {
    nbr_[fill[a]++] = b;
    nbr_[fill[b]++] = a;
  }
  for (std::size_t c = 0; c < cells; ++c) {
    std::sort(nbr_.begin() + nbr_offset_[c], nbr_.begin() + nbr_offset_[c + 1]);
  }

  nodes_.resize(n);
  for (NodeState& st : nodes_) st.peer.assign(n, 0);
}

std::uint64_t MeshWorkload::front_center(SimTime t) const {
  if (cfg_.front_period == 0) return 0;
  return (t % cfg_.front_period) * cfg_.cells / cfg_.front_period;
}

void MeshWorkload::start() {
  for (std::size_t n = 0; n < rt_.node_count(); ++n) {
    rt_.shard(n).schedule_at(0, [this, n] { step(n, rt_.shard(n).now()); });
  }
}

void MeshWorkload::step(std::size_t n, SimTime now) {
  NodeState& st = nodes_[n];
  ++st.steps;
  const std::size_t cells = cfg_.cells;
  const auto active =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     static_cast<double>(cells) *
                                     cfg_.front_width));
  const std::uint64_t center = front_center(now);
  const std::uint64_t lo = center + cells - active / 2;

  SimDuration dur = cfg_.step_base + st.migrate_backlog;
  st.migrate_backlog = 0;
  std::fill(st.peer.begin(), st.peer.end(), 0);
  std::uint64_t owned = 0;
  std::uint64_t remote = 0;
  for (std::uint64_t k = 0; k < active; ++k) {
    const auto cell = static_cast<std::uint32_t>((lo + k) % cells);
    if (cell_owner(cell) != n) continue;
    ++owned;
    ++st.updates;
    if (repart_ != nullptr) {
      repart_->tracker().record_work(n, cell, cfg_.cell_cost);
    }
    for (std::uint32_t e = nbr_offset_[cell]; e < nbr_offset_[cell + 1]; ++e) {
      const std::uint32_t nb = nbr_[e];
      ++st.total_reads;
      // Reading nb's halo from node n is the pull that makes nb prefer n.
      if (repart_ != nullptr) {
        repart_->tracker().record_access(
            n, nb, static_cast<std::uint32_t>(n), cfg_.halo_bytes);
      }
      const std::uint32_t m = cell_owner(nb);
      if (m != n) {
        ++remote;
        ++st.remote_reads;
        st.halo_byte_hops +=
            cfg_.halo_bytes *
            static_cast<std::uint64_t>(rt_.internode().hop_count(n, m));
        ++st.peer[m];
      }
    }
  }
  dur += owned * cfg_.cell_cost + remote * cfg_.remote_read_cost;

  // One halo notification per peer that served us remote reads this step.
  for (std::size_t m = 0; m < st.peer.size(); ++m) {
    const std::uint32_t c = st.peer[m];
    if (c == 0) continue;
    rt_.post(n, m, 0, [this, m, c] { nodes_[m].halo_in += c; });
  }

  const SimTime next = now + dur;
  st.finish = next;
  if (next < cfg_.duration) {
    rt_.shard(n).schedule_after(dur, [this, n] {
      step(n, rt_.shard(n).now());
    });
  }
}

void MeshWorkload::migrate_item(std::uint32_t item, std::uint32_t from,
                                std::uint32_t to, SimTime at) {
  (void)item;
  // The cell state rides the inter-node fabric; both ends absorb the
  // settle cost into their next step (charged at the epoch pause — a
  // consistent cut, so the charge is thread-count-invariant).
  const SimDuration wire = rt_.inter_node_latency(from, to) +
                           nanoseconds(cfg_.cell_state_bytes / 64 + 1);
  nodes_[from].migrate_backlog += wire / 2;
  nodes_[to].migrate_backlog += wire;
  ++nodes_[to].migrations_in;
  ECO_TRACE_SPAN(obs::Cat::kRepart, mesh_names().settle,
                 (obs::Lane{obs::kSimPid, kSettleTid}), at, at + wire, item);
}

MeshWorkload::Report MeshWorkload::report() const {
  Report folded = reduce_tree<Report>(
      nodes_.size(), Report{},
      [&](std::size_t i) {
        const NodeState& st = nodes_[i];
        Report leaf;
        leaf.updates = st.updates;
        leaf.steps = st.steps;
        leaf.remote_reads = st.remote_reads;
        leaf.total_reads = st.total_reads;
        leaf.halo_byte_hops = st.halo_byte_hops;
        leaf.halo_in = st.halo_in;
        leaf.migrations_in = st.migrations_in;
        leaf.finish = st.finish;
        std::uint64_t h = kFnvSeed;
        h = fnv_word(h, st.updates);
        h = fnv_word(h, st.steps);
        h = fnv_word(h, st.remote_reads);
        h = fnv_word(h, st.total_reads);
        h = fnv_word(h, st.halo_in);
        h = fnv_word(h, st.migrations_in);
        h = fnv_word(h, st.finish);
        leaf.fingerprint = h;
        return leaf;
      },
      [](Report a, Report b) {
        a.updates += b.updates;
        a.steps += b.steps;
        a.remote_reads += b.remote_reads;
        a.total_reads += b.total_reads;
        a.halo_byte_hops += b.halo_byte_hops;
        a.halo_in += b.halo_in;
        a.migrations_in += b.migrations_in;
        a.finish = std::max(a.finish, b.finish);
        a.fingerprint = fnv_word(a.fingerprint, b.fingerprint);
        return a;
      });
  if (repart_ != nullptr) {
    folded.fingerprint =
        fnv_word(folded.fingerprint, repart_->stats().plan_fingerprint);
  }
  if (folded.finish > 0) {
    folded.updates_per_sec =
        static_cast<double>(folded.updates) / to_seconds(folded.finish);
  }
  if (folded.total_reads > 0) {
    folded.remote_read_rate = static_cast<double>(folded.remote_reads) /
                              static_cast<double>(folded.total_reads);
  }
  return folded;
}

}  // namespace ecoscale::repart
