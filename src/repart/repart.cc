#include "repart/repart.h"

#include <algorithm>

#include "common/check.h"
#include "interconnect/network.h"
#include "obs/trace.h"
#include "runtime/scheduler.h"
#include "runtime/sharded.h"

namespace ecoscale::repart {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_word(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

struct RepartTraceNames {
  CounterId epoch = CounterRegistry::intern("repart.epoch");
  CounterId plan = CounterRegistry::intern("repart.plan");
  CounterId migrate = CounterRegistry::intern("repart.migrate");
  CounterId imbalance = CounterRegistry::intern("repart.imbalance");
};
[[maybe_unused]] const RepartTraceNames& repart_names() {
  static const RepartTraceNames names;
  return names;
}

/// Controller lane: the epoch loop runs on no node in particular.
constexpr std::uint16_t kRepartTid = 0xFFE0;

}  // namespace

RepartConfig RepartConfig::from(const RuntimeConfig& rc) {
  RepartConfig cfg;
  cfg.epoch = rc.repartition_epoch;
  cfg.max_moves = rc.repartition_max_moves;
  cfg.imbalance = rc.repartition_imbalance;
  cfg.alpha = rc.repartition_alpha;
  cfg.cooldown = rc.repartition_cooldown;
  cfg.min_gain = rc.repartition_min_gain;
  return cfg;
}

Repartitioner::Repartitioner(ShardedRuntime& rt, std::size_t items,
                             std::vector<std::uint32_t> initial_owner)
    : Repartitioner(rt, RepartConfig::from(rt.config().runtime), items,
                    std::move(initial_owner)) {}

Repartitioner::Repartitioner(ShardedRuntime& rt, RepartConfig cfg,
                             std::size_t items,
                             std::vector<std::uint32_t> initial_owner)
    : rt_(rt),
      cfg_(cfg),
      levels_(TreeLevels::from_network(rt.internode(), rt.node_count())),
      tracker_(rt.node_count(), items),
      owner_(std::move(initial_owner)),
      movable_at_(items, 0),
      prev_pref_(items, kNoPref),
      planned_(items, false) {
  ECO_CHECK_MSG(owner_.size() == items, "one initial owner per item");
  for (const std::uint32_t o : owner_) ECO_CHECK(o < rt_.node_count());
  ECO_CHECK(cfg_.alpha >= 0.0 && cfg_.alpha <= 1.0);
}

void Repartitioner::install() {
  ECO_CHECK_MSG(cfg_.epoch > 0, "repartitioning needs a nonzero epoch");
  rt_.set_epoch_policy(
      cfg_.epoch, [this](std::size_t epoch, SimTime at) { on_epoch(epoch, at); });
}

void Repartitioner::on_epoch(std::size_t epoch, SimTime at) {
  ++stats_.epochs;
  tracker_.collect(window_);
  const std::size_t n = rt_.node_count();
  const std::size_t items = owner_.size();

  // Balance mass per node: windowed work of its items, plus (optionally)
  // the scheduler backlog. Capacity: what the heartbeat monitor believes
  // is alive — a degraded node keeps its offered load but loses capacity,
  // which is exactly what makes diffusion drain it under faults.
  node_load_.assign(n, 0.0);
  node_cap_.assign(n, 0.0);
  for (std::size_t i = 0; i < items; ++i) {
    node_load_[owner_[i]] += static_cast<double>(window_.work[i]);
  }
  for (std::size_t d = 0; d < n; ++d) {
    RuntimeSystem& rs = rt_.runtime(d);
    node_cap_[d] = static_cast<double>(rs.believed_alive_workers());
    if (cfg_.queue_depth_weight > 0) {
      std::uint64_t depth = 0;
      for (std::size_t w = 0; w < rs.worker_count(); ++w) {
        depth += rs.queue_depth(w);
      }
      node_load_[d] +=
          static_cast<double>(depth * cfg_.queue_depth_weight);
    }
  }

  // Capacity-normalized imbalance (max per-alive-worker load over the
  // mean), the hysteresis gate. Load on a node with zero believed-alive
  // capacity is unconditionally imbalanced.
  double total_load = 0.0, total_cap = 0.0;
  for (std::size_t d = 0; d < n; ++d) {
    total_load += node_load_[d];
    total_cap += node_cap_[d];
  }
  double imb = 0.0;
  if (total_load > 0.0 && total_cap > 0.0) {
    const double mean = total_load / total_cap;
    double worst = 0.0;
    bool dead_loaded = false;
    for (std::size_t d = 0; d < n; ++d) {
      if (node_cap_[d] > 0.0) {
        worst = std::max(worst, node_load_[d] / node_cap_[d]);
      } else if (node_load_[d] > 0.0) {
        dead_loaded = true;
      }
    }
    imb = worst / mean - 1.0;
    if (dead_loaded) imb = std::max(imb, 1e6);
    imb = std::max(imb, 0.0);
  }
  stats_.last_imbalance = imb;

  node_target_ = diffusion_targets(levels_, node_load_, node_cap_, cfg_.alpha);

  std::vector<Move> plan;
  plan.reserve(cfg_.max_moves);
  std::fill(planned_.begin(), planned_.end(), false);
  plan_locality(epoch, plan);
  if (imb >= cfg_.imbalance) plan_balance(epoch, plan);

  ECO_TRACE_SPAN(obs::Cat::kRepart, repart_names().epoch,
                 (obs::Lane{obs::kSimPid, kRepartTid}),
                 at > cfg_.epoch ? at - cfg_.epoch : 0, at, epoch);
  ECO_TRACE_COUNTER(obs::Cat::kRepart, repart_names().imbalance,
                    (obs::Lane{obs::kSimPid, kRepartTid}), at,
                    static_cast<std::uint64_t>(
                        std::min(imb, 1e6) * 1e3));
  ECO_TRACE_INSTANT(obs::Cat::kRepart, repart_names().plan,
                    (obs::Lane{obs::kSimPid, kRepartTid}), at, plan.size());
  execute(plan, at);
}

void Repartitioner::plan_locality(std::size_t epoch, std::vector<Move>& plan) {
  const std::size_t n = rt_.node_count();
  struct Cand {
    std::uint64_t gain;
    std::uint32_t item;
    std::uint32_t from;
    std::uint32_t to;
  };
  std::vector<Cand> cands;
  for (std::uint32_t i = 0; i < owner_.size(); ++i) {
    const std::uint64_t* acc = &window_.access[static_cast<std::size_t>(i) * n];
    // Preferred node: argmax of windowed access weight, ties to the
    // lowest id; kNoPref when the item saw no traffic (no preference is
    // recorded, so stale affinities don't linger into quiet windows).
    std::uint32_t pref = kNoPref;
    std::uint64_t best = 0;
    for (std::uint32_t o = 0; o < n; ++o) {
      if (acc[o] > best) {
        best = acc[o];
        pref = o;
      }
    }
    const std::uint32_t own = owner_[i];
    if (pref != kNoPref && pref == prev_pref_[i] && pref != own &&
        best >= acc[own] + cfg_.min_gain && epoch >= movable_at_[i] &&
        node_cap_[pref] > 0.0) {
      const auto hops = static_cast<std::uint64_t>(
          rt_.internode().hop_count(own, pref));
      cands.push_back(
          Cand{(best - acc[own]) * std::max<std::uint64_t>(hops, 1), i, own,
               pref});
    }
    prev_pref_[i] = pref;
  }
  // Biggest traffic-distance wins first; item id breaks ties.
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    return a.item < b.item;
  });
  for (const Cand& c : cands) {
    if (plan.size() >= cfg_.max_moves) break;
    plan.push_back(Move{static_cast<std::uint64_t>(epoch), c.item, c.from,
                        c.to, MoveKind::kLocality});
    planned_[c.item] = true;
    // Keep the balance pass honest: it sees post-locality loads.
    const auto w = static_cast<double>(window_.work[c.item]);
    node_load_[c.from] -= w;
    node_load_[c.to] += w;
  }
}

void Repartitioner::plan_balance(std::size_t epoch, std::vector<Move>& plan) {
  const std::size_t n = rt_.node_count();
  if (plan.size() >= cfg_.max_moves) return;
  // Movable items per donor node, heaviest first.
  std::vector<std::vector<std::uint32_t>> pool(n);
  for (std::uint32_t i = 0; i < owner_.size(); ++i) {
    if (planned_[i] || window_.work[i] == 0 || epoch < movable_at_[i]) {
      continue;
    }
    pool[owner_[i]].push_back(i);
  }
  for (auto& p : pool) {
    std::sort(p.begin(), p.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (window_.work[a] != window_.work[b]) {
        return window_.work[a] > window_.work[b];
      }
      return a < b;
    });
  }
  // Donor hysteresis: a *live* node only donates while its surplus over
  // the diffusion target is a real fraction of the mean node load —
  // otherwise one dead-loaded node (imbalance pegged at 1e6) would let
  // the pass churn every survivor toward its target each epoch, and each
  // churned block costs a migration DMA plus stale-owner forwards. A
  // zero-capacity donor always drains: its surplus is its whole load.
  double mean_load = 0.0;
  for (std::size_t d = 0; d < n; ++d) mean_load += node_load_[d];
  mean_load /= static_cast<double>(n);
  std::vector<std::size_t> next(n, 0);
  while (plan.size() < cfg_.max_moves) {
    // Donor: largest surplus over its diffusion target with items left.
    std::size_t donor = n;
    double best_surplus = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
      if (next[d] >= pool[d].size()) continue;
      const double surplus = node_load_[d] - node_target_[d];
      if (node_cap_[d] > 0.0 && surplus < cfg_.imbalance * mean_load) {
        continue;
      }
      if (surplus > best_surplus) {
        best_surplus = surplus;
        donor = d;
      }
    }
    if (donor == n) break;
    // Skip items too big for the remaining surplus (sorted descending, so
    // everything behind them is a candidate).
    while (next[donor] < pool[donor].size() &&
           static_cast<double>(window_.work[pool[donor][next[donor]]]) >
               2.0 * best_surplus) {
      ++next[donor];
    }
    if (next[donor] >= pool[donor].size()) continue;
    const std::uint32_t item = pool[donor][next[donor]++];
    const auto w = static_cast<double>(window_.work[item]);
    // Receiver: enough deficit to absorb at least half the item, nearest
    // in the tree first (intra-chassis before cross-chassis — the
    // hierarchical part of the flow), then deepest deficit, then id.
    std::size_t recv = n;
    int best_hops = 0;
    double best_deficit = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == donor || node_cap_[r] <= 0.0) continue;
      const double deficit = node_target_[r] - node_load_[r];
      if (deficit < 0.5 * w) continue;
      const int hops = rt_.internode().hop_count(donor, r);
      const bool better =
          recv == n || hops < best_hops ||
          (hops == best_hops && deficit > best_deficit);
      if (better) {
        recv = r;
        best_hops = hops;
        best_deficit = deficit;
      }
    }
    if (recv == n) continue;
    plan.push_back(Move{static_cast<std::uint64_t>(epoch), item,
                        static_cast<std::uint32_t>(donor),
                        static_cast<std::uint32_t>(recv), MoveKind::kBalance});
    planned_[item] = true;
    node_load_[donor] -= w;
    node_load_[recv] += w;
  }
}

void Repartitioner::execute(const std::vector<Move>& plan, SimTime at) {
  for (const Move& m : plan) {
    owner_[m.item] = m.to;
    movable_at_[m.item] = m.epoch + cfg_.cooldown;
    const std::uint64_t bytes = client_ ? client_->item_bytes(m.item) : 0;
    const auto hops =
        static_cast<std::uint64_t>(rt_.internode().hop_count(m.from, m.to));
    ++stats_.moves;
    if (m.kind == MoveKind::kLocality) {
      ++stats_.locality_moves;
    } else {
      ++stats_.balance_moves;
    }
    stats_.moved_bytes += bytes;
    stats_.move_byte_hops += bytes * hops;
    std::uint64_t& h = stats_.plan_fingerprint;
    h = fnv_word(h, m.epoch);
    h = fnv_word(h, m.item);
    h = fnv_word(h, m.from);
    h = fnv_word(h, m.to);
    ECO_TRACE_INSTANT(obs::Cat::kRepart, repart_names().migrate,
                      (obs::Lane{obs::kSimPid, kRepartTid}), at, m.item);
    moves_.push_back(m);
    if (client_ != nullptr) client_->migrate_item(m.item, m.from, m.to, at);
  }
}

}  // namespace ecoscale::repart
