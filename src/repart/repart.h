// Online locality-aware repartitioner (ROADMAP item 3, DESIGN.md §7.11).
//
// Closes the loop from the observability counters (PR 3) and the
// migration/re-homing primitives (PR 4, C3) to *runtime* placement: live
// traffic records windowed load vectors (repart/load.h), and at every
// epoch pause of the ShardedRuntime (engine run_until() segments) the
// repartitioner folds them, runs hierarchical diffusion over the
// interconnect tree (repart/diffusion.h) and executes a rate-limited,
// hysteresis-damped migration plan through a RepartClient — the KV
// store's block re-homing, the mesh workload's cell moves, or anything
// else that owns items.
//
// Determinism at any --sim-threads (the property bench_repart and
// repart_test fingerprint-check 1 vs N):
//  * inputs: the folded windows, queue depths and believed-alive sets are
//    deterministic simulation state, read only while every shard is
//    paused at the same simulated instant;
//  * decisions: the plan is a pure function of those inputs — fixed
//    iteration order, integer/double arithmetic, explicit tie-breaks, no
//    RNG, no wall clock;
//  * effects: ownership flips happen at the pause (a consistent cut: all
//    events before the boundary are done, all at-or-after see the new
//    table), and the timed migration charges are scheduled at the
//    boundary. Every plan folds into `stats().plan_fingerprint`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "repart/diffusion.h"
#include "repart/load.h"

namespace ecoscale {
class ShardedRuntime;
struct RuntimeConfig;
}

namespace ecoscale::repart {

struct RepartConfig {
  /// Epoch period (the ShardedRuntime pause cadence). Must be > 0 to
  /// install().
  SimDuration epoch = microseconds(50);
  /// Rate limit: most migrations one epoch may execute.
  std::size_t max_moves = 32;
  /// Hysteresis floor on capacity-normalized imbalance (max/mean - 1);
  /// below it an epoch plans no balance moves.
  double imbalance = 0.10;
  /// Diffusion damping per epoch (repart/diffusion.h).
  double alpha = 0.5;
  /// Epochs an item stays frozen after it moves.
  std::size_t cooldown = 2;
  /// Locality moves need this much windowed access-weight advantage at
  /// the preferred node, and the preference must repeat on two
  /// consecutive epochs (transient skew never migrates).
  std::uint64_t min_gain = 16;
  /// Weight of one queued-or-running task in the balance load vector
  /// (work-cost units). 0 ignores queue depths.
  std::uint64_t queue_depth_weight = 0;

  /// The RuntimeConfig::repartition_* knob surface.
  static RepartConfig from(const RuntimeConfig& rc);
};

/// What the repartitioner drives. Implementations own the items' actual
/// state: they copy it and charge the timed cost of the move.
class RepartClient {
 public:
  virtual ~RepartClient() = default;
  /// Bytes that travel when `item` migrates (plan weighting and byte-hop
  /// accounting).
  virtual std::uint64_t item_bytes(std::uint32_t item) const = 0;
  /// Execute a migration decided at epoch pause time `at`. The owner
  /// table has already flipped; the implementation copies state and
  /// schedules its timed charges at or after `at` (no shard is running).
  virtual void migrate_item(std::uint32_t item, std::uint32_t from,
                            std::uint32_t to, SimTime at) = 0;
};

class Repartitioner {
 public:
  /// Reads the policy knobs from rt.config().runtime.repartition_*.
  Repartitioner(ShardedRuntime& rt, std::size_t items,
                std::vector<std::uint32_t> initial_owner);
  Repartitioner(ShardedRuntime& rt, RepartConfig cfg, std::size_t items,
                std::vector<std::uint32_t> initial_owner);

  void set_client(RepartClient* client) { client_ = client; }
  /// Install as rt's epoch policy (cfg.epoch must be > 0). Call once,
  /// before rt.run().
  void install();

  const RepartConfig& config() const { return cfg_; }
  std::size_t item_count() const { return owner_.size(); }
  std::uint32_t owner(std::uint32_t item) const {
    ECO_CHECK(item < owner_.size());
    return owner_[item];
  }
  const std::vector<std::uint32_t>& owners() const { return owner_; }
  LoadTracker& tracker() { return tracker_; }

  enum class MoveKind : std::uint8_t { kLocality, kBalance };
  struct Move {
    std::uint64_t epoch = 0;
    std::uint32_t item = 0;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    MoveKind kind = MoveKind::kLocality;
  };
  /// Every executed move, in execution order (tests assert rate limits,
  /// cooldowns and hysteresis on this).
  const std::vector<Move>& moves() const { return moves_; }

  struct Stats {
    std::uint64_t epochs = 0;
    std::uint64_t moves = 0;
    std::uint64_t locality_moves = 0;
    std::uint64_t balance_moves = 0;
    std::uint64_t moved_bytes = 0;
    /// Migration traffic in byte-hops (bytes x inter-node hop count).
    std::uint64_t move_byte_hops = 0;
    /// FNV-1a fold of (epoch, item, from, to) over every executed move —
    /// the plan's determinism witness.
    std::uint64_t plan_fingerprint = 1469598103934665603ull;
    /// Capacity-normalized imbalance observed at the last epoch.
    double last_imbalance = 0.0;
  };
  const Stats& stats() const { return stats_; }

  /// Last epoch's folded per-node load and diffusion targets (test and
  /// bench introspection).
  const std::vector<double>& last_load() const { return node_load_; }
  const std::vector<double>& last_target() const { return node_target_; }

 private:
  void on_epoch(std::size_t epoch, SimTime at);
  void plan_locality(std::size_t epoch, std::vector<Move>& plan);
  void plan_balance(std::size_t epoch, std::vector<Move>& plan);
  void execute(const std::vector<Move>& plan, SimTime at);

  ShardedRuntime& rt_;
  RepartConfig cfg_;
  TreeLevels levels_;
  LoadTracker tracker_;
  RepartClient* client_ = nullptr;
  std::vector<std::uint32_t> owner_;
  /// First epoch the item may move again (cooldown hysteresis).
  std::vector<std::uint64_t> movable_at_;
  /// Last epoch's preferred node per item (two-epoch confirmation) —
  /// item_count() entries, kNoPref when the item had no traffic.
  std::vector<std::uint32_t> prev_pref_;
  static constexpr std::uint32_t kNoPref = 0xFFFFFFFFu;
  /// Items already chosen this epoch (locality wins over balance).
  std::vector<bool> planned_;

  LoadTracker::Window window_;
  std::vector<double> node_load_;
  std::vector<double> node_cap_;
  std::vector<double> node_target_;
  std::vector<Move> moves_;
  Stats stats_;
};

}  // namespace ecoscale::repart
