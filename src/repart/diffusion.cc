#include "repart/diffusion.h"

#include <algorithm>

#include "common/check.h"
#include "interconnect/network.h"

namespace ecoscale::repart {

TreeLevels TreeLevels::from_network(Network& net, std::size_t nodes) {
  ECO_CHECK_MSG(net.implicit_routing(),
                "diffusion tiers come from the implicit tree arrays");
  ECO_CHECK(nodes >= 1 && nodes <= net.endpoint_count());

  // Root-down ancestor chain of every node's endpoint vertex (the chain
  // includes the leaf itself, so the deepest tier is the singleton
  // partition by construction).
  std::vector<std::vector<VertexId>> chains(nodes);
  std::size_t max_len = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    VertexId v = net.endpoint_vertex(n);
    std::vector<VertexId>& chain = chains[n];
    for (;;) {
      chain.push_back(v);
      const VertexId p = net.tree_parent(v);
      if (p == Network::kNoParent) break;
      v = p;
    }
    std::reverse(chain.begin(), chain.end());
    max_len = std::max(max_len, chain.size());
  }

  TreeLevels levels;
  levels.nodes = nodes;
  levels.group_of.resize(max_len);
  levels.group_count.resize(max_len);
  // Dense group ids in node order: scan nodes, map the tier-t ancestor
  // vertex to the next unseen id. A node shallower than tier t (uneven
  // tree) is keyed by its own leaf — already a singleton from there down.
  std::vector<VertexId> seen_vertex;
  std::vector<std::uint32_t> seen_id;
  for (std::size_t t = 0; t < max_len; ++t) {
    seen_vertex.clear();
    seen_id.clear();
    std::vector<std::uint32_t>& groups = levels.group_of[t];
    groups.resize(nodes);
    for (std::size_t n = 0; n < nodes; ++n) {
      const std::vector<VertexId>& chain = chains[n];
      const VertexId key = chain[std::min(t, chain.size() - 1)];
      std::uint32_t id = 0xFFFFFFFFu;
      for (std::size_t i = 0; i < seen_vertex.size(); ++i) {
        if (seen_vertex[i] == key) {
          id = seen_id[i];
          break;
        }
      }
      if (id == 0xFFFFFFFFu) {
        id = static_cast<std::uint32_t>(seen_vertex.size());
        seen_vertex.push_back(key);
        seen_id.push_back(id);
      }
      groups[n] = id;
    }
    levels.group_count[t] = seen_vertex.size();
  }
  ECO_CHECK(levels.group_count.front() == 1);
  ECO_CHECK(levels.group_count.back() == nodes);
  return levels;
}

std::vector<double> diffusion_targets(const TreeLevels& levels,
                                      const std::vector<double>& load,
                                      const std::vector<double>& capacity,
                                      double alpha) {
  const std::size_t n = levels.nodes;
  ECO_CHECK(load.size() == n && capacity.size() == n);
  ECO_CHECK(alpha >= 0.0 && alpha <= 1.0);
  std::vector<double> target = load;
  if (levels.tier_count() < 2) return target;

  // Scratch per tier: aggregate target/capacity per child group, plus the
  // child group -> parent group map (a child's members share the parent
  // ancestor too, so any member resolves it).
  std::vector<double> child_load, child_cap, child_new;
  std::vector<std::uint32_t> child_parent;
  std::vector<double> parent_total, parent_cap, parent_share_cap;

  for (std::size_t t = 0; t + 1 < levels.tier_count(); ++t) {
    const std::vector<std::uint32_t>& parent_of = levels.group_of[t];
    const std::vector<std::uint32_t>& child_of = levels.group_of[t + 1];
    const std::size_t nparents = levels.group_count[t];
    const std::size_t nchildren = levels.group_count[t + 1];
    child_load.assign(nchildren, 0.0);
    child_cap.assign(nchildren, 0.0);
    child_parent.assign(nchildren, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = child_of[i];
      child_load[c] += target[i];
      child_cap[c] += capacity[i];
      child_parent[c] = parent_of[i];
    }
    parent_total.assign(nparents, 0.0);
    parent_cap.assign(nparents, 0.0);
    std::vector<std::uint32_t> parent_children(nparents, 0);
    for (std::size_t c = 0; c < nchildren; ++c) {
      parent_total[child_parent[c]] += child_load[c];
      parent_cap[child_parent[c]] += child_cap[c];
      ++parent_children[child_parent[c]];
    }
    // New aggregate per child: damped step toward the capacity share.
    child_new.assign(nchildren, 0.0);
    for (std::size_t c = 0; c < nchildren; ++c) {
      const std::uint32_t p = child_parent[c];
      const double weight =
          parent_cap[p] > 0.0
              ? child_cap[c] / parent_cap[p]
              : 1.0 / static_cast<double>(parent_children[p]);
      const double share = parent_total[p] * weight;
      child_new[c] = child_load[c] + alpha * (share - child_load[c]);
    }
    // Push the new aggregates down to nodes: scale each child's members
    // (preserving its internal distribution — deeper tiers rebalance it),
    // or spread by capacity when the child currently holds nothing.
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = child_of[i];
      if (child_load[c] > 0.0) {
        target[i] *= child_new[c] / child_load[c];
      } else if (child_new[c] > 0.0) {
        // Count members lazily only on this rare path.
        double members_cap = child_cap[c];
        if (members_cap > 0.0) {
          target[i] = child_new[c] * capacity[i] / members_cap;
        } else {
          std::size_t members = 0;
          for (std::size_t j = 0; j < n; ++j) {
            if (child_of[j] == c) ++members;
          }
          target[i] = child_new[c] / static_cast<double>(members);
        }
      }
    }
  }
  return target;
}

}  // namespace ecoscale::repart
