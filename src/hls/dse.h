// HLS design-space exploration (paper §4.3).
//
// "The ECOSCALE HLS tool will tackle this problem by providing a way to
// specify performance and area constraints, and then automatically
// exploring high-performance hardware implementation techniques…"
//
// The explorer enumerates (unroll, pipeline, partition, DRAM-port) points,
// estimates each, keeps the area/throughput Pareto front, and selects
// designs under user constraints — no designer intervention, matching the
// paper's "minimal intervention" goal.
#pragma once

#include <optional>
#include <vector>

#include "hls/estimate.h"
#include "hls/ir.h"

namespace ecoscale {

struct DseLimits {
  std::uint32_t max_unroll = 16;
  std::uint32_t max_partition = 8;
  std::uint32_t max_dram_ports = 4;
  bool explore_no_pipeline = true;  // include pipeline=off points
};

struct DseConstraints {
  std::size_t max_slots = SIZE_MAX;       // area budget
  double min_items_per_cycle = 0.0;       // performance floor
};

/// All estimated points (the full sweep).
std::vector<HlsEstimate> enumerate_designs(const KernelIR& kernel,
                                           const DseLimits& limits = {},
                                           const HlsTechnology& tech = {});

/// Pareto-optimal subset (maximal throughput for given area), sorted by
/// ascending area.
std::vector<HlsEstimate> pareto_front(std::vector<HlsEstimate> points);

/// Best design under constraints: the highest-throughput Pareto point that
/// fits max_slots; nullopt if the floor is unreachable within the budget.
std::optional<HlsEstimate> select_design(const KernelIR& kernel,
                                         const DseConstraints& constraints,
                                         const DseLimits& limits = {},
                                         const HlsTechnology& tech = {});

/// Multi-variant module library entry: one module per Pareto point, so the
/// runtime can pick a small variant when the fabric is crowded and a large
/// one when it is empty (§4.3 "use this library in a very flexible manner").
std::vector<AcceleratorModule> emit_variants(const KernelIR& kernel,
                                             std::size_t max_variants = 4,
                                             const DseLimits& limits = {},
                                             const HlsTechnology& tech = {},
                                             std::size_t fabric_height = 8);

}  // namespace ecoscale
