#include "hls/estimate.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ecoscale {

namespace {

std::uint32_t op_area(const OpMix& ops, const HlsTechnology& t) {
  return ops.int_add * t.area_int_add + ops.int_mul * t.area_int_mul +
         ops.fp_add * t.area_fp_add + ops.fp_mul * t.area_fp_mul +
         ops.fp_div * t.area_fp_div + ops.special * t.area_special +
         ops.compare * t.area_compare;
}

/// Critical-path latency through one iteration's datapath: a serial chain
/// approximation weighted toward the slowest op classes.
std::uint32_t op_depth(const KernelIR& k, const HlsTechnology& t) {
  std::uint32_t depth = t.lat_mem;  // initial load
  if (k.ops.fp_div > 0) depth += t.lat_fp_div;
  if (k.ops.special > 0) depth += t.lat_special;
  // log2-deep reduction tree over the remaining arithmetic.
  const std::uint32_t arith = k.ops.int_add + k.ops.int_mul + k.ops.fp_add +
                              k.ops.fp_mul + k.ops.compare;
  if (arith > 0) {
    const auto levels = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(arith) + 1.0)));
    depth += levels * t.lat_fp_add;
  }
  if (k.stores > 0) depth += t.lat_mem;
  return std::max<std::uint32_t>(depth, 2);
}

}  // namespace

HlsEstimate estimate_design(const KernelIR& kernel, const HlsDesign& design,
                            const HlsTechnology& tech) {
  ECO_CHECK(design.unroll >= 1);
  ECO_CHECK(design.array_partition >= 1);
  ECO_CHECK(design.dram_ports >= 1);
  HlsEstimate est;
  est.design = design;

  // --- initiation interval ---
  // Memory-resource bound: U unrolled iterations issue U*(loads+stores)
  // accesses per II across (partitioned local ports + DRAM ports).
  const std::uint32_t mem_ops =
      (kernel.loads + kernel.stores) * design.unroll;
  const std::uint32_t ports = design.array_partition + design.dram_ports;
  const std::uint32_t resource_ii = static_cast<std::uint32_t>(
      (mem_ops + ports - 1) / ports);
  // Recurrence bound: a loop-carried chain of L cycles every D iterations
  // cannot be beaten by unrolling (unroll executes D-dependent iterations
  // serially within the unrolled body).
  std::uint32_t recurrence_ii = 1;
  if (kernel.recurrence_distance > 0) {
    recurrence_ii = static_cast<std::uint32_t>(
        (kernel.recurrence_latency + kernel.recurrence_distance - 1) /
        kernel.recurrence_distance);
    // The unrolled body contains `unroll` copies of the recurrence step.
    recurrence_ii *= design.unroll;
  }
  if (design.pipeline) {
    est.ii = std::max<std::uint32_t>(
        {1u, resource_ii, recurrence_ii});
  } else {
    // No pipelining: a new iteration starts only when the previous body
    // finishes.
    est.ii = op_depth(kernel, tech) * design.unroll;
  }

  est.depth = op_depth(kernel, tech);
  est.items_per_cycle =
      static_cast<double>(design.unroll) / static_cast<double>(est.ii);

  // --- area ---
  std::uint32_t area = op_area(kernel.ops, tech) * design.unroll;
  area += (kernel.loads + kernel.stores) * tech.area_mem_port * design.unroll;
  // Partitioned local arrays: banking multiplexers + duplicated control.
  area += design.array_partition * 64;
  area += design.dram_ports * 220;  // AXI-class DRAM port
  // Local array storage area (amortised BRAM-as-area), scaled by partition
  // replication overhead of ~10% per extra bank.
  const double bram_units =
      static_cast<double>(kernel.local_array_bytes) / 64.0 *
      (1.0 + 0.1 * static_cast<double>(design.array_partition - 1));
  area += static_cast<std::uint32_t>(bram_units);
  est.area_units = area;
  est.slots = std::max<std::size_t>(
      1, (area + tech.area_units_per_slot - 1) / tech.area_units_per_slot);

  // --- energy ---
  est.pj_per_item =
      tech.pj_per_op * static_cast<double>(kernel.ops.total()) +
      tech.pj_per_local_byte *
          static_cast<double>(kernel.bytes_in + kernel.bytes_out);
  return est;
}

AcceleratorModule emit_module(const KernelIR& kernel, const HlsEstimate& est,
                              const HlsTechnology& tech,
                              std::size_t fabric_height) {
  AcceleratorModule m;
  m.name = kernel.name + "_u" + std::to_string(est.design.unroll) + "_p" +
           std::to_string(est.design.array_partition);
  m.kernel = kernel.id;
  m.pipeline_depth = est.depth;
  // The module descriptor models per-item issue: with unroll U and interval
  // II, one item completes every II/U cycles on average. Keep integer math
  // by scaling the clock when II/U is fractional.
  if (est.ii % est.design.unroll == 0) {
    m.initiation_interval = est.ii / est.design.unroll;
    m.clock_ghz = tech.clock_ghz;
  } else {
    m.initiation_interval = est.ii;
    m.clock_ghz = tech.clock_ghz * static_cast<double>(est.design.unroll);
  }
  m.bytes_in_per_item = kernel.bytes_in;
  m.bytes_out_per_item = kernel.bytes_out;
  m.pj_per_item = est.pj_per_item;
  // Shape: fill columns of the fabric height first (GoAhead column-style
  // modules), then widen.
  const std::size_t h = std::min<std::size_t>(fabric_height, est.slots);
  const std::size_t w = (est.slots + h - 1) / h;
  m.shape = ModuleShape{w, h};
  m.logic_density = std::min(
      0.9, 0.25 + 0.1 * static_cast<double>(est.design.unroll));
  return m;
}

}  // namespace ecoscale
