// Analytic HLS estimation: from (KernelIR, HlsDesign) to cycle-accurate-ish
// pipeline parameters and a fabric footprint.
//
// This replaces the vendor HLS backend (SDAccel / FASTCUDA, §4.3) with an
// analytic model of the same decisions the paper lists: "pipelining, loop
// unrolling, as well as data storage and data-path partitioning and
// duplication".
#pragma once

#include <cstdint>
#include <string>

#include "fabric/accelerator.h"
#include "hls/ir.h"

namespace ecoscale {

/// One point in the HLS design space.
struct HlsDesign {
  std::uint32_t unroll = 1;          // datapath duplication factor
  bool pipeline = true;              // loop pipelining on/off
  std::uint32_t array_partition = 1; // local-memory banks
  std::uint32_t dram_ports = 1;      // external memory port parallelism
};

/// Estimated implementation of a design point.
struct HlsEstimate {
  HlsDesign design;
  std::uint32_t ii = 1;              // initiation interval (cycles/iteration)
  std::uint32_t depth = 1;           // pipeline depth (cycles)
  double items_per_cycle = 0.0;      // unroll / ii
  std::uint32_t area_units = 0;      // abstract LUT-equivalents
  std::size_t slots = 0;             // fabric slots (area_units / slot cap)
  double pj_per_item = 0.0;
  double throughput_gitems_s(double clock_ghz) const {
    return items_per_cycle * clock_ghz;
  }
};

struct HlsTechnology {
  std::uint32_t area_units_per_slot = 600;
  double clock_ghz = 0.25;
  // Per-op area (LUT-equivalents) and latency (cycles) and energy (pJ).
  // Indicative mid-2010s FPGA figures.
  std::uint32_t area_int_add = 16, lat_int_add = 1;
  std::uint32_t area_int_mul = 90, lat_int_mul = 3;
  std::uint32_t area_fp_add = 120, lat_fp_add = 5;
  std::uint32_t area_fp_mul = 160, lat_fp_mul = 4;
  std::uint32_t area_fp_div = 700, lat_fp_div = 16;
  std::uint32_t area_special = 900, lat_special = 20;
  std::uint32_t area_compare = 12, lat_compare = 1;
  std::uint32_t area_mem_port = 80, lat_mem = 2;
  double pj_per_op = 3.0;
  double pj_per_local_byte = 0.05;
};

/// Estimate a design point. Deterministic and monotone in the useful
/// directions (more unroll => no lower throughput until port-bound; more
/// area partitioning => more area).
HlsEstimate estimate_design(const KernelIR& kernel, const HlsDesign& design,
                            const HlsTechnology& tech = {});

/// Emit an AcceleratorModule descriptor for an estimated design.
AcceleratorModule emit_module(const KernelIR& kernel, const HlsEstimate& est,
                              const HlsTechnology& tech = {},
                              std::size_t fabric_height = 8);

}  // namespace ecoscale
