#include "hls/dse.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

std::vector<HlsEstimate> enumerate_designs(const KernelIR& kernel,
                                           const DseLimits& limits,
                                           const HlsTechnology& tech) {
  std::vector<HlsEstimate> out;
  for (std::uint32_t unroll = 1; unroll <= limits.max_unroll; unroll *= 2) {
    for (std::uint32_t part = 1; part <= limits.max_partition; part *= 2) {
      for (std::uint32_t ports = 1; ports <= limits.max_dram_ports;
           ports *= 2) {
        for (int pipe = limits.explore_no_pipeline ? 0 : 1; pipe <= 1;
             ++pipe) {
          HlsDesign d;
          d.unroll = unroll;
          d.array_partition = part;
          d.dram_ports = ports;
          d.pipeline = pipe == 1;
          out.push_back(estimate_design(kernel, d, tech));
        }
      }
    }
  }
  return out;
}

std::vector<HlsEstimate> pareto_front(std::vector<HlsEstimate> points) {
  // Sort by (area asc, throughput desc); sweep keeping strictly improving
  // throughput.
  std::sort(points.begin(), points.end(),
            [](const HlsEstimate& a, const HlsEstimate& b) {
              if (a.slots != b.slots) return a.slots < b.slots;
              return a.items_per_cycle > b.items_per_cycle;
            });
  std::vector<HlsEstimate> front;
  double best = -1.0;
  for (const auto& p : points) {
    if (p.items_per_cycle > best) {
      front.push_back(p);
      best = p.items_per_cycle;
    }
  }
  return front;
}

std::optional<HlsEstimate> select_design(const KernelIR& kernel,
                                         const DseConstraints& constraints,
                                         const DseLimits& limits,
                                         const HlsTechnology& tech) {
  const auto front = pareto_front(enumerate_designs(kernel, limits, tech));
  std::optional<HlsEstimate> best;
  for (const auto& p : front) {
    if (p.slots > constraints.max_slots) continue;
    if (!best || p.items_per_cycle > best->items_per_cycle) best = p;
  }
  if (best && best->items_per_cycle < constraints.min_items_per_cycle) {
    return std::nullopt;
  }
  return best;
}

std::vector<AcceleratorModule> emit_variants(const KernelIR& kernel,
                                             std::size_t max_variants,
                                             const DseLimits& limits,
                                             const HlsTechnology& tech,
                                             std::size_t fabric_height) {
  ECO_CHECK(max_variants >= 1);
  auto front = pareto_front(enumerate_designs(kernel, limits, tech));
  ECO_CHECK(!front.empty());
  // Thin the front to at most max_variants spread across the area range:
  // always keep the smallest and the largest, sample in between.
  std::vector<HlsEstimate> chosen;
  if (front.size() <= max_variants) {
    chosen = std::move(front);
  } else if (max_variants == 1) {
    // Highest-throughput point that still fits a fabric_height-square
    // fabric; fall back to the smallest design.
    const std::size_t cap = fabric_height * fabric_height;
    const HlsEstimate* pick = &front.front();
    for (const auto& p : front) {
      if (p.slots <= cap) pick = &p;
    }
    chosen.push_back(*pick);
  } else {
    for (std::size_t i = 0; i < max_variants; ++i) {
      const std::size_t idx =
          i * (front.size() - 1) / (max_variants - 1);
      chosen.push_back(front[idx]);
    }
  }
  std::vector<AcceleratorModule> modules;
  modules.reserve(chosen.size());
  for (const auto& est : chosen) {
    modules.push_back(emit_module(kernel, est, tech, fabric_height));
  }
  return modules;
}

}  // namespace ecoscale
