#include "hls/ir.h"

namespace ecoscale {

KernelIR make_stencil5_kernel() {
  KernelIR k;
  k.name = "stencil5";
  k.id = 101;
  k.ops.fp_add = 4;
  k.ops.fp_mul = 5;
  k.loads = 5;
  k.stores = 1;
  k.bytes_in = 5 * 8;
  k.bytes_out = 8;
  k.local_array_bytes = 3 * 1024;  // two row buffers
  k.recurrence_distance = 0;       // Jacobi: no loop-carried dep
  k.cpu_cycles_per_item = 14.0;
  return k;
}

KernelIR make_matmul_tile_kernel() {
  KernelIR k;
  k.name = "matmul_tile";
  k.id = 102;
  k.ops.fp_add = 1;
  k.ops.fp_mul = 1;
  k.loads = 2;
  k.stores = 0;  // accumulates into a register/local
  k.bytes_in = 16;
  k.bytes_out = 0;
  k.local_array_bytes = 16 * 1024;  // tile buffers
  k.recurrence_distance = 1;        // dot-product accumulation
  k.recurrence_latency = 5;         // FP add latency
  k.cpu_cycles_per_item = 6.0;
  return k;
}

KernelIR make_montecarlo_kernel() {
  KernelIR k;
  k.name = "montecarlo_path";
  k.id = 103;
  k.ops.fp_add = 4;
  k.ops.fp_mul = 6;
  k.ops.special = 2;  // exp + sqrt per step
  k.loads = 1;
  k.stores = 1;
  k.bytes_in = 8;
  k.bytes_out = 8;
  k.recurrence_distance = 0;  // independent paths
  k.cpu_cycles_per_item = 90.0;
  return k;
}

KernelIR make_cart_split_kernel() {
  KernelIR k;
  k.name = "cart_split";
  k.id = 104;
  k.ops.int_add = 4;
  k.ops.compare = 3;
  k.ops.fp_mul = 2;
  k.ops.fp_div = 1;  // gini ratio
  k.loads = 3;
  k.stores = 1;
  k.bytes_in = 12;
  k.bytes_out = 4;
  k.local_array_bytes = 8 * 1024;  // class histograms
  k.recurrence_distance = 1;       // histogram update
  k.recurrence_latency = 2;
  k.cpu_cycles_per_item = 22.0;
  return k;
}

KernelIR make_sha_like_kernel() {
  KernelIR k;
  k.name = "sha_rounds";
  k.id = 105;
  k.ops.int_add = 12;
  k.ops.int_mul = 2;
  k.ops.compare = 4;
  k.loads = 1;
  k.stores = 1;
  k.bytes_in = 64;
  k.bytes_out = 32;
  k.recurrence_distance = 1;  // chaining value
  k.recurrence_latency = 4;
  k.cpu_cycles_per_item = 80.0;
  return k;
}

KernelIR make_fft_kernel() {
  KernelIR k;
  k.name = "fft_butterfly";
  k.id = 107;
  // One butterfly: complex mul (4 mul + 2 add) + 2 complex adds.
  k.ops.fp_mul = 4;
  k.ops.fp_add = 6;
  k.loads = 2;   // two complex operands (strided)
  k.stores = 2;
  k.bytes_in = 32;
  k.bytes_out = 32;
  k.local_array_bytes = 32 * 1024;  // stage buffer + twiddle ROM
  k.recurrence_distance = 0;        // butterflies within a stage commute
  k.cpu_cycles_per_item = 18.0;
  return k;
}

KernelIR make_kmeans_kernel() {
  KernelIR k;
  k.name = "kmeans_assign";
  k.id = 108;
  // One work item = one point against k centroids (8 centroids × 4 dims):
  // squared distances + argmin.
  k.ops.fp_add = 32;
  k.ops.fp_mul = 32;
  k.ops.compare = 8;
  k.loads = 5;  // point dims + streaming centroid tile
  k.stores = 1;
  k.bytes_in = 32;
  k.bytes_out = 4;
  k.local_array_bytes = 4 * 1024;  // centroid buffer
  k.recurrence_distance = 0;       // points independent
  k.cpu_cycles_per_item = 120.0;
  return k;
}

KernelIR make_spmv_kernel() {
  KernelIR k;
  k.name = "spmv_gather";
  k.id = 106;
  k.ops.fp_add = 1;
  k.ops.fp_mul = 1;
  k.loads = 3;  // value, column index, x[col]
  k.stores = 1;
  k.bytes_in = 20;
  k.bytes_out = 8;
  k.recurrence_distance = 1;  // row accumulation
  k.recurrence_latency = 5;
  k.cpu_cycles_per_item = 11.0;
  return k;
}

}  // namespace ecoscale
