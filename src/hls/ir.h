// Kernel intermediate representation consumed by the HLS flow.
//
// A kernel (an OpenCL work-function in the paper's programming model) is
// characterised by its per-work-item operation mix, memory behaviour and
// the loop-carried recurrence that bounds pipelining. This is the
// "non-hardware-specific OpenCL model" of §4.3: no architectural decisions
// (unrolling, partitioning, port counts) appear here — those are what the
// HLS explorer chooses.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "fabric/accelerator.h"

namespace ecoscale {

struct OpMix {
  std::uint32_t int_add = 0;
  std::uint32_t int_mul = 0;
  std::uint32_t fp_add = 0;
  std::uint32_t fp_mul = 0;
  std::uint32_t fp_div = 0;
  std::uint32_t special = 0;  // sqrt/exp/log class
  std::uint32_t compare = 0;

  std::uint32_t total() const {
    return int_add + int_mul + fp_add + fp_mul + fp_div + special + compare;
  }
};

struct KernelIR {
  std::string name;
  KernelId id = 0;

  /// Operation mix of one work item (one inner-loop iteration).
  OpMix ops;

  /// Memory behaviour per work item.
  std::uint32_t loads = 2;
  std::uint32_t stores = 1;
  Bytes bytes_in = 16;
  Bytes bytes_out = 8;

  /// Local (on-fabric) array footprint; partitioning it multiplies ports
  /// but costs area.
  Bytes local_array_bytes = 0;

  /// Loop-carried recurrence: a dependency chain of `recurrence_latency`
  /// cycles every `recurrence_distance` iterations bounds the achievable
  /// initiation interval (0 distance = fully parallel).
  std::uint32_t recurrence_distance = 0;
  std::uint32_t recurrence_latency = 0;

  /// Software cost (for the CPU fallback and the runtime's HW/SW choice):
  /// average CPU cycles per work item at 1 GHz-class scalar issue.
  double cpu_cycles_per_item = 0.0;
};

/// Representative kernels used across tests, examples and benches.
/// These mirror the application classes the paper cites: stencil codes,
/// dense linear algebra, Monte-Carlo finance [18], CART data mining [17].
KernelIR make_stencil5_kernel();     // 5-point Jacobi relaxation
KernelIR make_matmul_tile_kernel();  // dense mat-mul inner tile
KernelIR make_montecarlo_kernel();   // path-wise option pricing step
KernelIR make_cart_split_kernel();   // CART gini-split scan
KernelIR make_sha_like_kernel();     // integer hash/compression rounds
KernelIR make_spmv_kernel();         // irregular gather-multiply
KernelIR make_fft_kernel();          // radix-2 butterfly stage
KernelIR make_kmeans_kernel();       // point-to-centroid distance scan

}  // namespace ecoscale
