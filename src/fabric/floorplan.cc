#include "fabric/floorplan.h"

#include <algorithm>

namespace ecoscale {

Floorplan::Floorplan(std::size_t width, std::size_t height)
    : width_(width), height_(height), occupied_(width * height, false) {
  ECO_CHECK(width_ > 0 && height_ > 0);
}

bool Floorplan::fits_at(std::size_t x, std::size_t y,
                        const ModuleShape& s) const {
  if (x + s.width > width_ || y + s.height > height_) return false;
  for (std::size_t dy = 0; dy < s.height; ++dy) {
    for (std::size_t dx = 0; dx < s.width; ++dx) {
      if (occupied_[(y + dy) * width_ + (x + dx)]) return false;
    }
  }
  return true;
}

void Floorplan::mark(const Placement& p, bool occupied) {
  for (std::size_t dy = 0; dy < p.shape.height; ++dy) {
    for (std::size_t dx = 0; dx < p.shape.width; ++dx) {
      occupied_[(p.y + dy) * width_ + (p.x + dx)] = occupied;
    }
  }
}

std::optional<std::pair<std::size_t, std::size_t>> Floorplan::find_spot(
    const ModuleShape& s) const {
  // Bottom-left first-fit scan: deterministic and keeps packing compact.
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      if (fits_at(x, y, s)) return std::make_pair(x, y);
    }
  }
  return std::nullopt;
}

std::optional<RegionId> Floorplan::place(const ModuleShape& shape) {
  ECO_CHECK(shape.width > 0 && shape.height > 0);
  const auto spot = find_spot(shape);
  if (!spot) return std::nullopt;
  Placement p{spot->first, spot->second, shape};
  mark(p, true);
  used_slots_ += shape.slots();
  // Reuse a dead region slot if one exists.
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (!regions_[i]) {
      regions_[i] = p;
      return static_cast<RegionId>(i);
    }
  }
  regions_.push_back(p);
  return static_cast<RegionId>(regions_.size() - 1);
}

void Floorplan::remove(RegionId region) {
  ECO_CHECK_MSG(is_live(region), "removing a region that is not live");
  mark(*regions_[region], false);
  used_slots_ -= regions_[region]->shape.slots();
  regions_[region].reset();
}

bool Floorplan::is_live(RegionId region) const {
  return region < regions_.size() && regions_[region].has_value();
}

const Placement& Floorplan::placement(RegionId region) const {
  ECO_CHECK(is_live(region));
  return *regions_[region];
}

bool Floorplan::can_place(const ModuleShape& shape) const {
  return find_spot(shape).has_value();
}

std::size_t Floorplan::largest_free_rectangle() const {
  // Classic largest-rectangle-in-histogram sweep over rows.
  std::vector<std::size_t> heights(width_, 0);
  std::size_t best = 0;
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      heights[x] = occupied_[y * width_ + x] ? 0 : heights[x] + 1;
    }
    // Stack-based max rectangle for this histogram row.
    std::vector<std::size_t> stack;
    for (std::size_t x = 0; x <= width_; ++x) {
      const std::size_t h = x < width_ ? heights[x] : 0;
      std::size_t start = x;
      while (!stack.empty() && heights[stack.back()] > h) {
        const std::size_t top = stack.back();
        stack.pop_back();
        const std::size_t left = stack.empty() ? 0 : stack.back() + 1;
        best = std::max(best, heights[top] * (x - left));
        start = left;
      }
      (void)start;
      if (x < width_) stack.push_back(x);
    }
  }
  return best;
}

double Floorplan::fragmentation() const {
  const std::size_t free = free_slots();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_rectangle()) /
                   static_cast<double>(free);
}

std::size_t Floorplan::defragment() {
  // Collect live placements, clear the grid, re-place largest-first
  // bottom-left. Region ids are preserved.
  struct Entry {
    RegionId id;
    Placement p;
  };
  std::vector<Entry> live;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i]) {
      live.push_back(Entry{static_cast<RegionId>(i), *regions_[i]});
      mark(*regions_[i], false);
    }
  }
  used_slots_ = 0;
  std::stable_sort(live.begin(), live.end(), [](const Entry& a, const Entry& b) {
    return a.p.shape.slots() > b.p.shape.slots();
  });
  std::size_t moved = 0;
  for (auto& e : live) {
    const auto spot = find_spot(e.p.shape);
    ECO_CHECK_MSG(spot.has_value(), "defragment failed to re-place module");
    Placement np{spot->first, spot->second, e.p.shape};
    if (np.x != e.p.x || np.y != e.p.y) ++moved;
    mark(np, true);
    used_slots_ += np.shape.slots();
    regions_[e.id] = np;
  }
  return moved;
}

std::vector<RegionId> Floorplan::live_regions() const {
  std::vector<RegionId> out;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i]) out.push_back(static_cast<RegionId>(i));
  }
  return out;
}

}  // namespace ecoscale
