// Runtime partial-reconfiguration manager (middleware lower half, §4.3).
//
// Owns one Worker's fabric: the slot-grid floorplan, the configuration port
// (a serially reusable resource with ICAP-class bandwidth) and the set of
// currently loaded modules. Provides ensure_loaded() — the primitive the
// runtime scheduler calls when it decides a function should execute in
// hardware — with LRU eviction of idle modules and optional defragmentation
// and bitstream compression.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/energy.h"
#include "common/units.h"
#include "fabric/accelerator.h"
#include "fabric/bitstream.h"
#include "fabric/floorplan.h"
#include "obs/trace.h"
#include "sim/timeline.h"

namespace ecoscale {

enum class BitstreamMode {
  kFullRegion,    // fixed island covering the whole fabric column set
  kBoundingBox,   // GoAhead-minimised region == module bbox
};

enum class CompressionMode { kNone, kRle, kLz };

struct ReconfigConfig {
  std::size_t fabric_width = 8;
  std::size_t fabric_height = 8;
  Bandwidth config_port_bw = Bandwidth::from_gib_per_s(0.4);  // ICAP ~400 MB/s
  SimDuration setup_latency = microseconds(5);  // driver + port arbitration
  double pj_per_config_byte = 2.0;
  BitstreamMode bitstream_mode = BitstreamMode::kBoundingBox;
  CompressionMode compression = CompressionMode::kNone;
  bool allow_defrag = true;
};

struct LoadResult {
  RegionId region = 0;
  SimTime ready = 0;       // when the module is usable
  bool reconfigured = false;   // false = was already loaded
  bool evicted_any = false;
  bool defragmented = false;
  Bytes config_bytes = 0;  // bytes pushed through the port (post-compression)
};

class ReconfigManager {
 public:
  explicit ReconfigManager(std::string name, ReconfigConfig config = {});

  /// Make `module` available, loading (and possibly evicting/defragmenting)
  /// as needed. Returns nullopt if the module cannot fit even on an empty
  /// fabric or all loaded modules are busy past any feasible eviction.
  std::optional<LoadResult> ensure_loaded(const AcceleratorModule& module,
                                          SimTime now);

  /// Mark a region busy until `t` (the scheduler sets this around
  /// invocations; busy modules are never evicted).
  void set_busy_until(RegionId region, SimTime t);

  bool is_loaded(KernelId kernel) const;
  /// Loaded and not executing at time `now` (safe to evict/relocate).
  bool is_idle(KernelId kernel, SimTime now) const;
  std::optional<RegionId> region_of(KernelId kernel) const;

  /// Kernels currently resident on the fabric, ascending id. Fault
  /// injection samples from this set (an SEU corrupts a loaded bitstream).
  std::vector<KernelId> loaded_kernels() const {
    std::vector<KernelId> out;
    out.reserve(loaded_.size());
    for (const auto& [kernel, entry] : loaded_) out.push_back(kernel);
    return out;
  }

  /// Explicitly unload a kernel's module.
  void unload(KernelId kernel);

  const Floorplan& floorplan() const { return floorplan_; }

  // --- stats ---
  std::uint64_t loads() const { return loads_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t defrag_runs() const { return defrag_runs_; }
  Bytes config_bytes() const { return config_bytes_total_; }
  SimDuration config_time() const { return config_port_.busy_time(); }
  const EnergyMeter& energy() const { return energy_; }
  const ReconfigConfig& config() const { return config_; }

  /// Wire bytes for this module under the current mode settings; exposed so
  /// benches can tabulate size without performing a load.
  Bytes wire_bytes_for(const AcceleratorModule& module) const;

  /// Trace lane this fabric's reconfiguration spans land on (pid = node,
  /// tid = worker); the owning Worker wires it at construction.
  void set_trace_lane(obs::Lane lane) { trace_lane_ = lane; }
  obs::Lane trace_lane() const { return trace_lane_; }

 private:
  struct Loaded {
    KernelId kernel = 0;
    RegionId region = 0;
    SimTime busy_until = 0;
    SimTime last_used = 0;
  };

  std::optional<RegionId> make_room(const ModuleShape& shape, SimTime now,
                                    LoadResult& result);

  std::string name_;
  ReconfigConfig config_;
  obs::Lane trace_lane_;
  Floorplan floorplan_;
  Timeline config_port_;
  std::map<KernelId, Loaded> loaded_;
  EnergyMeter energy_;
  std::uint64_t loads_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t defrag_runs_ = 0;
  Bytes config_bytes_total_ = 0;
  std::uint64_t bitstream_seed_ = 1;
};

}  // namespace ecoscale
