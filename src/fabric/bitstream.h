// Partial bitstream model with configuration-data compression.
//
// Paper §4.3: "By minimizing module bounding boxes and by using
// configuration data compression [11], we will reduce memory requirements,
// configuration latency and configuration power consumption at the same
// time." We generate synthetic bitstreams whose statistics mimic real
// partial bitstreams (long zero runs from unused resources, repeated frame
// patterns) and implement the two decompressor-friendly schemes of Koch et
// al. [11]: run-length encoding of zero frames and LZ-style dictionary
// references.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace ecoscale {

/// Bytes of configuration data per fabric slot (one "frame column").
inline constexpr Bytes kBytesPerSlot = 4096;

struct Bitstream {
  std::vector<std::uint8_t> data;

  Bytes size() const { return data.size(); }
};

/// Generate a synthetic partial bitstream for a module occupying
/// `slots` slots with logic density `density` in [0,1]: density is the
/// fraction of configuration frames carrying non-trivial logic; the rest
/// are zero (unused routing/logic), which is what makes real partial
/// bitstreams compressible.
Bitstream generate_bitstream(std::size_t slots, double density,
                             std::uint64_t seed);

struct CompressionResult {
  std::vector<std::uint8_t> data;
  Bytes original_size = 0;
  Bytes compressed_size = 0;

  double ratio() const {
    return compressed_size
               ? static_cast<double>(original_size) /
                     static_cast<double>(compressed_size)
               : 0.0;
  }
};

/// Zero-run-length encoding: the hardware decompressor of [11] expands
/// zero-runs at full configuration-port rate.
CompressionResult compress_rle(const Bitstream& bs);
Bitstream decompress_rle(const CompressionResult& c);

/// Dictionary (LZ77-style, 4 KiB window, byte-aligned tokens): higher ratio
/// than zero-RLE at a modest decompressor cost.
CompressionResult compress_lz(const Bitstream& bs);
Bitstream decompress_lz(const CompressionResult& c);

}  // namespace ecoscale
