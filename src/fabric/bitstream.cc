#include "fabric/bitstream.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

Bitstream generate_bitstream(std::size_t slots, double density,
                             std::uint64_t seed) {
  ECO_CHECK(density >= 0.0 && density <= 1.0);
  Rng rng(seed);
  Bitstream bs;
  bs.data.resize(slots * kBytesPerSlot, 0);
  // Work frame-by-frame (64-byte frames): a frame is either zero (unused
  // fabric), a repeated pattern (regular routing), or random (dense logic).
  constexpr std::size_t kFrame = 64;
  for (std::size_t off = 0; off + kFrame <= bs.data.size(); off += kFrame) {
    const double u = rng.uniform();
    if (u >= density) continue;  // zero frame
    if (rng.chance(0.5)) {
      // Repeated pattern frame.
      const auto pattern = static_cast<std::uint8_t>(rng.uniform_u64(256));
      std::fill_n(bs.data.begin() + static_cast<std::ptrdiff_t>(off), kFrame,
                  pattern);
    } else {
      for (std::size_t i = 0; i < kFrame; ++i) {
        bs.data[off + i] = static_cast<std::uint8_t>(rng.uniform_u64(256));
      }
    }
  }
  return bs;
}

namespace {

// Token format for zero-RLE:
//   0x00 <u16 count>         : run of `count` zero bytes
//   0x01 <u16 count> <bytes> : literal run
void put_u16(std::vector<std::uint8_t>& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

std::size_t get_u16(const std::vector<std::uint8_t>& in, std::size_t pos) {
  return static_cast<std::size_t>(in[pos]) |
         (static_cast<std::size_t>(in[pos + 1]) << 8);
}

constexpr std::size_t kMaxRun = 0xffff;

}  // namespace

CompressionResult compress_rle(const Bitstream& bs) {
  CompressionResult result;
  result.original_size = bs.size();
  const auto& in = bs.data;
  std::size_t i = 0;
  while (i < in.size()) {
    if (in[i] == 0) {
      std::size_t run = 0;
      while (i + run < in.size() && in[i + run] == 0 && run < kMaxRun) ++run;
      result.data.push_back(0x00);
      put_u16(result.data, run);
      i += run;
    } else {
      std::size_t run = 0;
      while (i + run < in.size() && in[i + run] != 0 && run < kMaxRun) ++run;
      result.data.push_back(0x01);
      put_u16(result.data, run);
      result.data.insert(result.data.end(),
                         in.begin() + static_cast<std::ptrdiff_t>(i),
                         in.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    }
  }
  result.compressed_size = result.data.size();
  return result;
}

Bitstream decompress_rle(const CompressionResult& c) {
  Bitstream out;
  out.data.reserve(c.original_size);
  std::size_t i = 0;
  while (i < c.data.size()) {
    const std::uint8_t tag = c.data[i];
    const std::size_t count = get_u16(c.data, i + 1);
    i += 3;
    if (tag == 0x00) {
      out.data.insert(out.data.end(), count, 0);
    } else {
      out.data.insert(out.data.end(),
                      c.data.begin() + static_cast<std::ptrdiff_t>(i),
                      c.data.begin() + static_cast<std::ptrdiff_t>(i + count));
      i += count;
    }
  }
  return out;
}

namespace {

// LZ77 token format:
//   0x00 <u16 len> <bytes>        : literal run
//   0x01 <u16 dist> <u16 len>     : copy `len` bytes from `dist` back
constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 6;

}  // namespace

CompressionResult compress_lz(const Bitstream& bs) {
  CompressionResult result;
  result.original_size = bs.size();
  const auto& in = bs.data;
  // Hash chains over 4-byte prefixes for match finding.
  std::vector<std::int64_t> head(1 << 16, -1);
  std::vector<std::int64_t> prev(in.size(), -1);
  auto hash4 = [&](std::size_t pos) -> std::uint16_t {
    std::uint32_t h = 0;
    for (int k = 0; k < 4; ++k) {
      h = h * 131 + in[pos + static_cast<std::size_t>(k)];
    }
    return static_cast<std::uint16_t>(h ^ (h >> 16));
  };
  std::vector<std::uint8_t> literals;
  auto flush_literals = [&] {
    std::size_t off = 0;
    while (off < literals.size()) {
      const std::size_t chunk = std::min(literals.size() - off, kMaxRun);
      result.data.push_back(0x00);
      put_u16(result.data, chunk);
      result.data.insert(
          result.data.end(),
          literals.begin() + static_cast<std::ptrdiff_t>(off),
          literals.begin() + static_cast<std::ptrdiff_t>(off + chunk));
      off += chunk;
    }
    literals.clear();
  };
  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + 4 <= in.size()) {
      const std::uint16_t h = hash4(i);
      std::int64_t cand = head[h];
      int tries = 16;
      while (cand >= 0 && tries-- > 0 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const auto c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t max_len = std::min(in.size() - i, kMaxRun);
        while (len < max_len && in[c + len] == in[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
        }
        cand = prev[c];
      }
    }
    if (best_len >= kMinMatch) {
      flush_literals();
      result.data.push_back(0x01);
      put_u16(result.data, best_dist);
      put_u16(result.data, best_len);
      // Insert hash entries for the covered region (sparsely, every 4th,
      // to bound compression time).
      const std::size_t end = i + best_len;
      while (i < end) {
        if (i + 4 <= in.size()) {
          const std::uint16_t h = hash4(i);
          prev[i] = head[h];
          head[h] = static_cast<std::int64_t>(i);
        }
        i += 4;
      }
      i = end;
    } else {
      if (i + 4 <= in.size()) {
        const std::uint16_t h = hash4(i);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      literals.push_back(in[i]);
      ++i;
    }
  }
  flush_literals();
  result.compressed_size = result.data.size();
  return result;
}

Bitstream decompress_lz(const CompressionResult& c) {
  Bitstream out;
  out.data.reserve(c.original_size);
  std::size_t i = 0;
  while (i < c.data.size()) {
    const std::uint8_t tag = c.data[i];
    if (tag == 0x00) {
      const std::size_t len = get_u16(c.data, i + 1);
      i += 3;
      out.data.insert(out.data.end(),
                      c.data.begin() + static_cast<std::ptrdiff_t>(i),
                      c.data.begin() + static_cast<std::ptrdiff_t>(i + len));
      i += len;
    } else {
      const std::size_t dist = get_u16(c.data, i + 1);
      const std::size_t len = get_u16(c.data, i + 3);
      i += 5;
      ECO_CHECK(dist <= out.data.size());
      for (std::size_t k = 0; k < len; ++k) {
        out.data.push_back(out.data[out.data.size() - dist]);
      }
    }
  }
  return out;
}

}  // namespace ecoscale
