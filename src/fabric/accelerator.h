// Accelerator module descriptors — the unit the HLS flow emits and the
// middleware loads onto the fabric (paper §4.3 "accelerator module library").
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/units.h"
#include "fabric/bitstream.h"
#include "fabric/floorplan.h"

namespace ecoscale {

using KernelId = std::uint32_t;

struct AcceleratorModule {
  std::string name;
  KernelId kernel = 0;

  // Physical footprint after floorplanning.
  ModuleShape shape;

  // Pipeline timing (from HLS): latency(n) = depth + (n - 1) * ii cycles.
  std::uint32_t pipeline_depth = 16;
  std::uint32_t initiation_interval = 1;
  double clock_ghz = 0.25;  // typical mid-2010s fabric clock

  // Per-item data movement (drives memory/interconnect traffic).
  Bytes bytes_in_per_item = 8;
  Bytes bytes_out_per_item = 8;

  // Energy.
  double pj_per_item = 40.0;       // dynamic energy per work item
  double pj_static_per_ns = 0.05;  // leakage while configured

  // Configuration data: full-region vs. bounding-box-minimised sizes are
  // computed from the shape; `density` feeds the synthetic bitstream.
  double logic_density = 0.45;

  SimDuration cycle_time() const {
    ECO_CHECK(clock_ghz > 0);
    return static_cast<SimDuration>(1000.0 / clock_ghz);  // ps per cycle
  }

  /// Pipelined execution time for `items` work items.
  SimDuration compute_time(std::uint64_t items) const {
    if (items == 0) return 0;
    const std::uint64_t cycles =
        pipeline_depth +
        (items - 1) * static_cast<std::uint64_t>(initiation_interval);
    return cycles * cycle_time();
  }

  Picojoules compute_energy(std::uint64_t items) const {
    return pj_per_item * static_cast<double>(items);
  }

  /// Raw bitstream size when the partial region is the module's bounding
  /// box (GoAhead-minimised).
  Bytes bbox_bitstream_bytes() const { return shape.slots() * kBytesPerSlot; }
};

}  // namespace ecoscale
