// GoAhead-style floorplanning of partial modules onto the fabric slot grid.
//
// The reconfigurable block of a Worker is a grid of width × height slots
// (a slot ≈ one resource column segment). Modules occupy rectangular
// bounding boxes. The floorplanner places boxes (first-fit over a
// deterministic scan order), tracks fragmentation, and supports
// defragmentation by repacking live modules — the middleware's
// "defragmenting the reconfigurable resources" role (paper §4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ecoscale {

struct ModuleShape {
  std::size_t width = 1;   // slots
  std::size_t height = 1;  // slots
  std::size_t slots() const { return width * height; }
};

struct Placement {
  std::size_t x = 0;
  std::size_t y = 0;
  ModuleShape shape;
};

using RegionId = std::uint32_t;

class Floorplan {
 public:
  Floorplan(std::size_t width, std::size_t height);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t total_slots() const { return width_ * height_; }
  std::size_t used_slots() const { return used_slots_; }
  std::size_t free_slots() const { return total_slots() - used_slots_; }

  /// Place a module; returns its region id, or nullopt if no rectangle of
  /// the required shape is free (possibly due to fragmentation).
  std::optional<RegionId> place(const ModuleShape& shape);

  void remove(RegionId region);

  bool is_live(RegionId region) const;
  const Placement& placement(RegionId region) const;

  /// Could `shape` be placed right now?
  bool can_place(const ModuleShape& shape) const;

  /// External fragmentation: 1 - (largest free rectangle / free slots).
  /// 0 when the free space is one solid rectangle (or fabric is full).
  double fragmentation() const;

  std::size_t largest_free_rectangle() const;

  /// Repack all live modules into a bottom-left-justified layout.
  /// Returns the number of modules that moved (each move costs a module
  /// relocation: readback + rewrite, charged by the ReconfigManager).
  std::size_t defragment();

  std::vector<RegionId> live_regions() const;

 private:
  bool fits_at(std::size_t x, std::size_t y, const ModuleShape& s) const;
  void mark(const Placement& p, bool occupied);
  std::optional<std::pair<std::size_t, std::size_t>> find_spot(
      const ModuleShape& s) const;

  std::size_t width_;
  std::size_t height_;
  std::vector<bool> occupied_;  // width_ * height_
  std::size_t used_slots_ = 0;
  std::vector<std::optional<Placement>> regions_;
};

}  // namespace ecoscale
