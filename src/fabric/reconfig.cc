#include "fabric/reconfig.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

namespace {
/// Reconfiguration span names, one per compression scheme so a Perfetto
/// query can split latency by wire format without parsing args.
struct ReconfigTraceNames {
  CounterId by_compression[3] = {
      CounterRegistry::intern("fabric.reconfig.none"),
      CounterRegistry::intern("fabric.reconfig.rle"),
      CounterRegistry::intern("fabric.reconfig.lz"),
  };
};
[[maybe_unused]] const ReconfigTraceNames& reconfig_trace_names() {
  static const ReconfigTraceNames names;
  return names;
}
}  // namespace

ReconfigManager::ReconfigManager(std::string name, ReconfigConfig config)
    : name_(std::move(name)),
      config_(config),
      floorplan_(config.fabric_width, config.fabric_height),
      config_port_(name_ + ".icap") {}

Bytes ReconfigManager::wire_bytes_for(const AcceleratorModule& module) const {
  // Raw size depends on the region granularity...
  std::size_t region_slots = 0;
  switch (config_.bitstream_mode) {
    case BitstreamMode::kFullRegion:
      // Fixed islands: the bitstream always covers a full-height column
      // strip as wide as the module (classic island-style PR).
      region_slots = module.shape.width * config_.fabric_height;
      break;
    case BitstreamMode::kBoundingBox:
      region_slots = module.shape.slots();
      break;
  }
  const Bitstream raw =
      generate_bitstream(region_slots, module.logic_density,
                         0x5eedull ^ module.kernel);
  // ...and the wire size on the compression scheme.
  switch (config_.compression) {
    case CompressionMode::kNone:
      return raw.size();
    case CompressionMode::kRle:
      return compress_rle(raw).compressed_size;
    case CompressionMode::kLz:
      return compress_lz(raw).compressed_size;
  }
  return raw.size();
}

std::optional<RegionId> ReconfigManager::make_room(const ModuleShape& shape,
                                                   SimTime now,
                                                   LoadResult& result) {
  if (auto region = floorplan_.place(shape)) return region;
  // Evict idle (not busy at `now`) modules, least-recently-used first,
  // until the shape fits.
  for (;;) {
    const Loaded* lru = nullptr;
    for (const auto& [kernel, entry] : loaded_) {
      if (entry.busy_until > now) continue;
      if (lru == nullptr || entry.last_used < lru->last_used) lru = &entry;
    }
    if (lru == nullptr) break;  // everything is busy
    floorplan_.remove(lru->region);
    loaded_.erase(lru->kernel);
    ++evictions_;
    result.evicted_any = true;
    if (auto region = floorplan_.place(shape)) return region;
    // Enough free area but fragmented? Defragment once.
    if (config_.allow_defrag &&
        floorplan_.free_slots() >= shape.slots() &&
        !floorplan_.can_place(shape)) {
      // Only legal if nothing is mid-execution (module relocation needs
      // idle modules).
      bool any_busy = false;
      for (const auto& [kernel, entry] : loaded_) {
        if (entry.busy_until > now) {
          any_busy = true;
          break;
        }
      }
      if (!any_busy) {
        floorplan_.defragment();
        ++defrag_runs_;
        result.defragmented = true;
        if (auto region = floorplan_.place(shape)) return region;
      }
    }
  }
  return std::nullopt;
}

std::optional<LoadResult> ReconfigManager::ensure_loaded(
    const AcceleratorModule& module, SimTime now) {
  LoadResult result;
  if (auto it = loaded_.find(module.kernel); it != loaded_.end()) {
    it->second.last_used = now;
    result.region = it->second.region;
    result.ready = now;
    result.reconfigured = false;
    return result;
  }
  if (module.shape.width > floorplan_.width() ||
      module.shape.height > floorplan_.height()) {
    return std::nullopt;  // can never fit
  }
  const auto region = make_room(module.shape, now, result);
  if (!region) return std::nullopt;

  const Bytes wire = wire_bytes_for(module);
  const SimDuration transfer = config_.config_port_bw.transfer_time(wire);
  const SimTime start = config_port_.reserve(now, transfer);
  result.region = *region;
  result.ready = start + config_.setup_latency + transfer;
  result.reconfigured = true;
  result.config_bytes = wire;
  // Reconfiguration span: request to module-ready, wire bytes as the
  // attribute (bitstream size after compression).
  ECO_TRACE_SPAN(
      obs::Cat::kFabric,
      reconfig_trace_names()
          .by_compression[static_cast<std::size_t>(config_.compression)],
      trace_lane_, now, result.ready, wire);
  config_bytes_total_ += wire;
  ++loads_;
  energy_.charge("fabric.config",
                 config_.pj_per_config_byte * static_cast<double>(wire));
  loaded_[module.kernel] =
      Loaded{module.kernel, *region, /*busy_until=*/result.ready,
             /*last_used=*/now};
  ++bitstream_seed_;
  return result;
}

void ReconfigManager::set_busy_until(RegionId region, SimTime t) {
  for (auto& [kernel, entry] : loaded_) {
    if (entry.region == region) {
      entry.busy_until = std::max(entry.busy_until, t);
      entry.last_used = t;
      return;
    }
  }
  ECO_CHECK_MSG(false, "set_busy_until on unknown region");
}

bool ReconfigManager::is_loaded(KernelId kernel) const {
  return loaded_.contains(kernel);
}

bool ReconfigManager::is_idle(KernelId kernel, SimTime now) const {
  auto it = loaded_.find(kernel);
  return it != loaded_.end() && it->second.busy_until <= now;
}

std::optional<RegionId> ReconfigManager::region_of(KernelId kernel) const {
  auto it = loaded_.find(kernel);
  if (it == loaded_.end()) return std::nullopt;
  return it->second.region;
}

void ReconfigManager::unload(KernelId kernel) {
  auto it = loaded_.find(kernel);
  ECO_CHECK_MSG(it != loaded_.end(), "unloading a kernel that is not loaded");
  floorplan_.remove(it->second.region);
  loaded_.erase(it);
}

}  // namespace ecoscale
