// Contention-aware network model over a Topology.
//
// Transfers are routed over the shortest path (breadth-first, deterministic
// tie-break by link id). Timing uses a cut-through approximation: the head
// of the packet pays each traversed link's hop latency, while serialization
// time is paid once per link and reserved on the link's timeline, so
// congestion lengthens transfers. Energy: pJ/byte/hop plus per-packet switch
// energy, with per-level parameters (higher levels are longer and costlier).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/energy.h"
#include "common/stats.h"
#include "common/units.h"
#include "interconnect/packet.h"
#include "interconnect/topology.h"
#include "sim/timeline.h"

namespace ecoscale {

struct LinkParams {
  SimDuration hop_latency = nanoseconds(25);
  Bandwidth bandwidth = Bandwidth::from_gib_per_s(8.0);
  double pj_per_byte = 1.0;
  double pj_per_packet = 5.0;  // switch/arbiter energy
};

struct NetworkConfig {
  /// Per-level link parameters; a level not present falls back to level 0
  /// (which must be present).
  std::map<int, LinkParams> level_params = {{0, LinkParams{}}};

  /// If true, all links share one serialization timeline (a bus).
  bool shared_medium = false;
};

struct TransferResult {
  SimTime arrival = 0;       // when the last byte reaches the destination
  int hops = 0;              // links traversed
  Picojoules energy = 0.0;
};

class Network {
 public:
  Network(Topology topology, NetworkConfig config);

  std::size_t endpoint_count() const { return topo_.endpoint_count(); }

  /// Route `packet` from endpoint index src to endpoint index dst, first
  /// byte ready at `ready`. Endpoint indices are positions in the
  /// topology's endpoint list, not raw vertex ids.
  TransferResult send(std::size_t src, std::size_t dst, const Packet& packet,
                      SimTime ready);

  /// Hop count of the route between two endpoints.
  int hop_count(std::size_t src, std::size_t dst);

  /// Maximum hop count over all endpoint pairs (paper §2: tree depth adds
  /// one hop per level). Computed by BFS from every endpoint.
  int diameter();

  // --- accounting -------------------------------------------------------
  const EnergyMeter& energy() const { return energy_; }
  std::uint64_t total_packets() const { return packets_; }
  /// Sum over links of bytes carried: the "byte-hops" traffic metric.
  std::uint64_t byte_hops() const { return byte_hops_; }
  /// Bytes carried per level.
  const std::map<int, std::uint64_t>& bytes_per_level() const {
    return bytes_per_level_;
  }
  /// Peak serialization backlog seen on any link timeline.
  SimTime max_link_busy() const;
  double max_link_utilization(SimTime horizon) const;

  /// Promise that no future send() departs before `watermark`: prunes every
  /// link calendar's retired intervals (see CalendarTimeline::release).
  void release(SimTime watermark);
  /// Peak live-interval count over all link calendars (prune health).
  std::size_t peak_live_intervals() const;

  const Topology& topology() const { return topo_; }

 private:
  const std::vector<LinkId>& route(VertexId src, VertexId dst);
  const LinkParams& params_for_level(int level) const;
  const std::vector<std::uint32_t>& parents_from(VertexId src);

  Topology topo_;
  NetworkConfig config_;
  std::vector<CalendarTimeline> link_timelines_;  // one per directed link
  CalendarTimeline bus_timeline_;                 // used when shared_medium
  EnergyMeter energy_;
  std::uint64_t packets_ = 0;
  std::uint64_t byte_hops_ = 0;
  std::map<int, std::uint64_t> bytes_per_level_;

  // Routing caches.
  std::map<VertexId, std::vector<std::uint32_t>> parent_cache_;  // BFS trees
  std::map<std::pair<VertexId, VertexId>, std::vector<LinkId>> path_cache_;
};

}  // namespace ecoscale
