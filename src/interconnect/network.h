// Contention-aware network model over a Topology.
//
// Transfers are routed over the shortest path (breadth-first, deterministic
// tie-break by link id). Timing uses a cut-through approximation: the head
// of the packet pays each traversed link's hop latency, while serialization
// time is paid once per link and reserved on the link's timeline, so
// congestion lengthens transfers. Energy: pJ/byte/hop plus per-packet switch
// energy, with per-level parameters (higher levels are longer and costlier).
//
// Routing state is hierarchical/implicit by default (DESIGN.md §7.7): when
// the topology is a tree — every ECOSCALE machine shape (worker/node/chassis
// hierarchies, crossbars, buses) is one — routes are *computed* from each
// vertex's tree position by a lowest-common-ancestor walk instead of being
// materialized in a dense src·E+dst table. A 100k-endpoint machine then
// carries ~16 bytes of routing state per vertex instead of an 8-byte
// RouteRef per endpoint *pair* (80 GB at 100k). Non-tree topologies
// (dragonfly, mesh) keep the legacy dense table, as does
// RoutingMode::kDenseTable — the equivalence oracle for tests and an opt-in
// cache for small machines.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/energy.h"
#include "common/stats.h"
#include "common/units.h"
#include "interconnect/packet.h"
#include "interconnect/topology.h"
#include "sim/timeline.h"

namespace ecoscale {

struct LinkParams {
  SimDuration hop_latency = nanoseconds(25);
  Bandwidth bandwidth = Bandwidth::from_gib_per_s(8.0);
  double pj_per_byte = 1.0;
  double pj_per_packet = 5.0;  // switch/arbiter energy
};

/// How routes are resolved (see the header comment).
enum class RoutingMode {
  /// Implicit LCA routing when the topology is a tree, dense otherwise.
  kAuto,
  /// Require implicit routing; constructing over a non-tree is an error.
  kImplicitTree,
  /// Legacy dense src·E+dst table with BFS precompute, even for trees.
  kDenseTable,
};

struct NetworkConfig {
  /// Per-level link parameters; a level not present falls back to level 0
  /// (which must be present).
  std::map<int, LinkParams> level_params = {{0, LinkParams{}}};

  /// If true, all links share one serialization timeline (a bus).
  bool shared_medium = false;

  RoutingMode routing = RoutingMode::kAuto;
};

struct TransferResult {
  SimTime arrival = 0;       // when the last byte reaches the destination
  int hops = 0;              // links traversed
  Picojoules energy = 0.0;
};

class Network {
 public:
  Network(Topology topology, NetworkConfig config);

  std::size_t endpoint_count() const { return topo_.endpoint_count(); }

  /// Route `packet` from endpoint index src to endpoint index dst, first
  /// byte ready at `ready`. Endpoint indices are positions in the
  /// topology's endpoint list, not raw vertex ids.
  TransferResult send(std::size_t src, std::size_t dst, const Packet& packet,
                      SimTime ready);

  /// Hop count of the route between two endpoints. Pure (thread-safe) under
  /// implicit routing.
  int hop_count(std::size_t src, std::size_t dst);

  /// Pure head latency (sum of per-hop latencies, no serialization or
  /// queueing) of the route between two endpoints. A lower bound on any
  /// send() between the pair, whatever the congestion or degradation
  /// state — degradation throttles bandwidth, never hop latency.
  /// Under implicit routing this is a mutation-free LCA walk, safe to call
  /// from concurrent shard threads; under the dense table it lazily
  /// materializes the route (call min_cross_latency() first to pre-warm).
  SimDuration route_latency(std::size_t src, std::size_t dst);

  /// Minimum route_latency() over all endpoint pairs whose route traverses
  /// at least one link of level >= `min_level` — i.e. the soonest any
  /// message crossing that tier of the hierarchy can possibly arrive.
  /// This is the conservative lookahead of the sharded parallel simulation
  /// engine: shard per Compute Node, pass min_cross_latency(1), and no
  /// cross-shard event can ever land inside a synchronization window.
  /// Returns 0 if no route crosses `min_level` (single-partition topology).
  /// Implicit routing computes it analytically (an O(V) two-pass tree DP
  /// over per-level link latencies) instead of enumerating endpoint pairs;
  /// the dense path keeps the pairwise sweep and, as a side effect,
  /// materializes every route so later table reads are safe from
  /// concurrent shard threads. Cached per level either way.
  SimDuration min_cross_latency(int min_level = 0);

  /// Per-source variant of min_cross_latency(): the minimum route_latency()
  /// from endpoint `src` to any *other* endpoint over a route traversing at
  /// least one link of level >= `min_level`. This is a shard's "source
  /// floor" for the adaptive sharded engine (sim/parallel.h): every
  /// cross-partition message endpoint `src` emits pays at least this much,
  /// so `min over busy shards s of (next_event(s) + min_latency_from(s))`
  /// bounds any delivery into another shard — even a relayed one, since
  /// each relay leg re-pays its own source floor. Returns 0 if no route
  /// from `src` crosses `min_level`.
  /// Implicit routing answers from a per-level tree DP cached on first use
  /// (O(V) build, then O(depth) per query): climbing from the source leaf,
  /// each ancestor contributes its nearest descendant endpoint through a
  /// sibling branch, with "nearest except the branch I came from" answered
  /// by top-2 child contributions — tracked both unconditionally and
  /// restricted to paths that cross `min_level` inside the branch. The
  /// dense path sweeps destinations with the same crossing oracle as
  /// min_cross_latency().
  SimDuration min_latency_from(std::size_t src, int min_level = 0);

  /// Maximum hop count over all endpoint pairs (paper §2: tree depth adds
  /// one hop per level). Implicit routing derives it from the level
  /// structure — the deepest-LCA endpoint pair, an O(V) tree DP — instead
  /// of one BFS per source (quadratic at 10k+ endpoints).
  int diameter();

  // --- accounting -------------------------------------------------------
  const EnergyMeter& energy() const { return energy_; }
  std::uint64_t total_packets() const { return packets_; }
  /// Sum over links of bytes carried: the "byte-hops" traffic metric.
  std::uint64_t byte_hops() const { return byte_hops_; }
  /// Bytes carried per level (materialized from the dense per-level array;
  /// levels never traversed are omitted, matching the old map semantics).
  std::map<int, std::uint64_t> bytes_per_level() const;
  /// Peak serialization backlog seen on any link timeline.
  SimTime max_link_busy() const;
  double max_link_utilization(SimTime horizon) const;

  /// True when routes are computed implicitly from the topology tree.
  bool implicit_routing() const { return tree_routing_; }
  /// Sentinel returned by tree_parent() at the root.
  static constexpr VertexId kNoParent = 0xFFFFFFFFu;
  /// Implicit-tree position accessors (require implicit_routing()): the
  /// vertex behind endpoint index `i`, its parent vertex (kNoParent at the
  /// root) and its depth (root = 0). Pure reads of the per-vertex tree
  /// arrays, safe from concurrent shard threads. The repartitioner's
  /// hierarchical diffusion rebuilds its sibling groups per tier from
  /// exactly these (src/repart/diffusion.h).
  VertexId endpoint_vertex(std::size_t i) const { return topo_.endpoint(i); }
  VertexId tree_parent(VertexId v) const {
    ECO_CHECK(tree_routing_ && v < parent_.size());
    return parent_[v];
  }
  std::size_t tree_depth(VertexId v) const {
    ECO_CHECK(tree_routing_ && v < depth_.size());
    return depth_[v];
  }
  /// Logical bytes of routing state: the per-vertex tree arrays under
  /// implicit routing, or the dense RouteRef table + path arena + BFS
  /// parent caches under the dense table. Size-based (not capacity), so
  /// the number is deterministic and bench_scale can gate it per endpoint.
  std::size_t route_state_bytes() const;

  // --- fault injection --------------------------------------------------
  /// Degrade (or restore, factor = 1.0) every link of `level`: effective
  /// serialization time is scaled by `factor` (>= 1.0), modelling a lane
  /// failure or persistent ECC retraining on that tier of the tree. Hop
  /// latency is unchanged — degradation throttles bandwidth, not distance.
  void set_level_degradation(int level, double factor);
  double level_degradation(int level) const {
    const auto l = static_cast<std::size_t>(level);
    return l < level_factor_.size() ? level_factor_[l] : 1.0;
  }

  /// Promise that no future send() departs before `watermark`: prunes every
  /// link calendar's retired intervals (see CalendarTimeline::release).
  void release(SimTime watermark);
  /// Peak live-interval count over all link calendars (prune health).
  std::size_t peak_live_intervals() const;

  const Topology& topology() const { return topo_; }

 private:
  /// Route between endpoint *indices*. Dense mode resolves through the
  /// dense route table (offsets into one shared LinkId arena), lazily
  /// built; implicit mode materializes the LCA walk into a scratch vector.
  /// Either way the returned span is valid until the next route() call.
  std::span<const LinkId> route(std::size_t src_ep, std::size_t dst_ep);
  std::span<const LinkId> tree_route(VertexId src, VertexId dst);
  const LinkParams& params_for_level(int level) const {
    const auto l = static_cast<std::size_t>(level);
    return l < level_params_.size() ? level_params_[l] : level_params_[0];
  }
  SimDuration up_hop_latency(VertexId v) const {
    return params_for_level(topo_.link(up_link_[v]).level).hop_latency;
  }
  const std::vector<std::uint32_t>& parents_from(VertexId src);
  /// Root the topology at vertex 0 if it is a tree; fills the per-vertex
  /// arrays and returns true. Non-trees leave them empty.
  bool try_root_tree();

  Topology topo_;
  NetworkConfig config_;
  std::vector<CalendarTimeline> link_timelines_;  // one per directed link
  CalendarTimeline bus_timeline_;                 // used when shared_medium
  EnergyMeter energy_;
  std::uint64_t packets_ = 0;
  std::uint64_t byte_hops_ = 0;

  // Dense hot tables, built at construction (see DESIGN.md §7.3):
  //  * level_params_[l] — O(1) per-hop parameter lookup (absent levels
  //    fall back to a copy of level 0);
  //  * bytes_per_level_[l] — per-level traffic tally;
  //  * packet_energy_ids_[type] — pre-interned "net.<type>" CounterIds.
  std::vector<LinkParams> level_params_;
  std::vector<std::uint64_t> bytes_per_level_;
  std::vector<double> level_factor_;  // serialization multiplier, >= 1.0
  std::array<CounterId, kPacketTypeCount> packet_energy_ids_{};

  // Implicit hierarchical routing (DESIGN.md §7.7). Four u32 arrays indexed
  // by vertex — 16 bytes per vertex, the entire routing state of a tree.
  // parent_/up_link_/down_link_ hold kNoVertex / kNoLink at the root.
  bool tree_routing_ = false;
  std::vector<std::uint32_t> parent_;    // parent vertex
  std::vector<LinkId> up_link_;          // v -> parent(v)
  std::vector<LinkId> down_link_;        // parent(v) -> v
  std::vector<std::uint32_t> depth_;     // root = 0
  std::vector<VertexId> bfs_order_;      // parents before children (DP order)
  std::vector<LinkId> path_scratch_;     // send()'s materialized route
  std::vector<LinkId> down_scratch_;     // dst-side chain, reversed into path

  // Dense routing caches (legacy / non-tree). routes_ is a dense src*E+dst
  // table of {offset, len} into path_arena_; parent trees are cached per
  // source vertex.
  struct RouteRef {
    std::uint32_t offset = 0;
    std::uint32_t len = kUnresolved;
  };
  static constexpr std::uint32_t kUnresolved = 0xFFFFFFFFu;
  std::vector<RouteRef> routes_;            // endpoint_count()^2
  std::vector<LinkId> path_arena_;          // shared storage for all routes
  std::vector<std::vector<std::uint32_t>> parent_cache_;  // BFS trees
  std::map<int, SimDuration> min_cross_cache_;  // min_cross_latency memo

  // min_latency_from() per-min_level DP arrays (implicit routing only).
  // down_min[v]: nearest endpoint in v's subtree; down_cross[v]: nearest
  // one whose path from v crosses a level >= min_level link; best1/best2
  // (and the crossing-restricted best1x/best2x): top-2 child contributions
  // at each parent, for O(1) "best sibling except me" during a query climb.
  struct SourceDp {
    std::vector<bool> is_ep;
    std::vector<SimDuration> down_min, down_cross;
    std::vector<SimDuration> best1, best2, best1x, best2x;
  };
  std::map<int, SourceDp> source_dp_cache_;
};

}  // namespace ecoscale
