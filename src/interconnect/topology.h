// Interconnect topology graph.
//
// Vertices are endpoints (Workers / Compute-Node routers) or switches; links
// carry a "level" tag so a multi-layer hierarchy (paper Figure 3: L0, L1, …
// interconnects) can charge level-specific latency and energy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace ecoscale {

using VertexId = std::uint32_t;
using LinkId = std::uint32_t;

struct TopoLink {
  VertexId from = 0;
  VertexId to = 0;
  int level = 0;
};

class Topology {
 public:
  /// Add a vertex. Endpoints are the only legal sources/destinations.
  VertexId add_vertex(bool is_endpoint) {
    const auto id = static_cast<VertexId>(adjacency_.size());
    adjacency_.emplace_back();
    if (is_endpoint) endpoints_.push_back(id);
    return id;
  }

  /// Add a bidirectional link (two directed links sharing the level tag).
  void add_link(VertexId a, VertexId b, int level) {
    ECO_CHECK(a < adjacency_.size() && b < adjacency_.size());
    ECO_CHECK(a != b);
    add_directed(a, b, level);
    add_directed(b, a, level);
  }

  std::size_t vertex_count() const { return adjacency_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t endpoint_count() const { return endpoints_.size(); }

  VertexId endpoint(std::size_t i) const {
    ECO_CHECK(i < endpoints_.size());
    return endpoints_[i];
  }

  const std::vector<LinkId>& out_links(VertexId v) const {
    return adjacency_[v];
  }
  const TopoLink& link(LinkId l) const { return links_[l]; }

 private:
  void add_directed(VertexId from, VertexId to, int level) {
    const auto id = static_cast<LinkId>(links_.size());
    links_.push_back(TopoLink{from, to, level});
    adjacency_[from].push_back(id);
  }

  std::vector<std::vector<LinkId>> adjacency_;
  std::vector<TopoLink> links_;
  std::vector<VertexId> endpoints_;
};

/// --- Topology builders -------------------------------------------------

/// Hierarchical tree: `radices[l]` children per level-l switch; level 0
/// attaches endpoints. E.g. {8, 8, 8} = 512 endpoints, 3 switch levels.
/// This is the ECOSCALE multi-layer interconnect of Figures 1 and 3.
Topology make_tree(const std::vector<std::size_t>& radices);

/// All endpoints attached to a single central switch (2 hops everywhere).
Topology make_crossbar(std::size_t endpoints);

/// All endpoints on one shared medium, modelled as a chain through a single
/// switch whose links all share level 0 — the degenerate flat baseline.
Topology make_bus(std::size_t endpoints);

/// Dragonfly-like: `groups` fully connected groups of `routers` routers,
/// each with `endpoints_per_router` endpoints; one global link between every
/// pair of groups. High-radix topology per paper §2 ref [2].
Topology make_dragonfly(std::size_t groups, std::size_t routers,
                        std::size_t endpoints_per_router);

/// 2D mesh of switches (one endpoint per switch), the classic flat HPC
/// fabric used as a non-hierarchical baseline.
Topology make_mesh2d(std::size_t cols, std::size_t rows);

}  // namespace ecoscale
