#include "interconnect/network.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/check.h"
#include "obs/trace.h"

namespace ecoscale {

namespace {
constexpr std::uint32_t kNoParent = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kNoVertex = std::numeric_limits<std::uint32_t>::max();
constexpr SimDuration kInfLatency = std::numeric_limits<SimDuration>::max();

/// Counter-track names for the interconnect, interned once per process.
struct NetTraceNames {
  CounterId packets = CounterRegistry::intern("net.packets");
  CounterId byte_hops = CounterRegistry::intern("net.byte_hops");
};
[[maybe_unused]] const NetTraceNames& net_trace_names() {
  static const NetTraceNames names;
  return names;
}

/// Stretch a duration by a degradation factor (>= 1.0, rounded to ps).
SimDuration scale_duration(SimDuration d, double factor) {
  if (factor == 1.0) return d;
  return static_cast<SimDuration>(static_cast<double>(d) * factor + 0.5);
}

/// Saturating add for the tree DPs (kInfLatency means "no endpoint here").
SimDuration sat_add(SimDuration a, SimDuration b) {
  return (a == kInfLatency || b == kInfLatency) ? kInfLatency : a + b;
}
}  // namespace

Network::Network(Topology topology, NetworkConfig config)
    : topo_(std::move(topology)),
      config_(std::move(config)),
      bus_timeline_("bus") {
  ECO_CHECK_MSG(config_.level_params.contains(0),
                "NetworkConfig must define level-0 link parameters");
  link_timelines_.resize(topo_.link_count());

  // Dense per-level parameter and traffic tables: links carry small level
  // tags, so an indexed array replaces the per-hop map find.
  int max_level = 0;
  for (LinkId l = 0; l < topo_.link_count(); ++l) {
    max_level = std::max(max_level, topo_.link(l).level);
  }
  for (const auto& [level, params] : config_.level_params) {
    if (level > max_level) max_level = level;
  }
  level_params_.assign(static_cast<std::size_t>(max_level) + 1,
                       config_.level_params.at(0));
  for (const auto& [level, params] : config_.level_params) {
    if (level >= 0) level_params_[static_cast<std::size_t>(level)] = params;
  }
  bytes_per_level_.assign(level_params_.size(), 0);
  level_factor_.assign(level_params_.size(), 1.0);

  // Pre-intern the per-packet-type energy categories so send() never
  // builds a "net." + name string on the hot path.
  for (std::size_t t = 0; t < kPacketTypeCount; ++t) {
    packet_energy_ids_[t] = CounterRegistry::intern(
        std::string("net.") +
        packet_type_name(static_cast<PacketType>(t)));
  }

  if (config_.routing != RoutingMode::kDenseTable) {
    tree_routing_ = try_root_tree();
  }
  ECO_CHECK_MSG(
      config_.routing != RoutingMode::kImplicitTree || tree_routing_,
      "RoutingMode::kImplicitTree requires a tree topology");
  if (!tree_routing_) {
    // Legacy dense tables: an 8-byte RouteRef per endpoint pair plus BFS
    // parent caches. Quadratic — only for non-trees and explicit opt-in.
    routes_.assign(topo_.endpoint_count() * topo_.endpoint_count(),
                   RouteRef{});
    parent_cache_.resize(topo_.vertex_count());
  }
}

bool Network::try_root_tree() {
  const std::size_t verts = topo_.vertex_count();
  if (verts == 0) return false;
  // A connected graph with exactly V-1 bidirectional links (2(V-1)
  // directed) and no self loops is a tree; root it at vertex 0 by BFS.
  if (topo_.link_count() != 2 * (verts - 1)) return false;
  parent_.assign(verts, kNoVertex);
  up_link_.assign(verts, kNoVertex);
  down_link_.assign(verts, kNoVertex);
  depth_.assign(verts, 0);
  bfs_order_.clear();
  bfs_order_.reserve(verts);
  bfs_order_.push_back(0);
  std::vector<bool> seen(verts, false);
  seen[0] = true;
  for (std::size_t head = 0; head < bfs_order_.size(); ++head) {
    const VertexId v = bfs_order_[head];
    for (LinkId l : topo_.out_links(v)) {
      const VertexId next = topo_.link(l).to;
      if (seen[next]) continue;
      seen[next] = true;
      parent_[next] = v;
      down_link_[next] = l;
      depth_[next] = depth_[v] + 1;
      // The reverse (child -> parent) directed link; trees have exactly
      // one, so a scan over the child's out-links is deterministic.
      for (LinkId r : topo_.out_links(next)) {
        if (topo_.link(r).to == v) {
          up_link_[next] = r;
          break;
        }
      }
      ECO_CHECK(up_link_[next] != kNoVertex);
      bfs_order_.push_back(next);
    }
  }
  if (bfs_order_.size() != verts) {  // disconnected: not a usable tree
    parent_.clear();
    up_link_.clear();
    down_link_.clear();
    depth_.clear();
    bfs_order_.clear();
    return false;
  }
  return true;
}

const std::vector<std::uint32_t>& Network::parents_from(VertexId src) {
  std::vector<std::uint32_t>& parent = parent_cache_[src];
  if (!parent.empty()) return parent;
  // BFS over vertices; parent[v] = link id used to reach v (deterministic:
  // links are visited in insertion order).
  parent.assign(topo_.vertex_count(), kNoParent);
  std::vector<VertexId> frontier{src};
  std::vector<bool> seen(topo_.vertex_count(), false);
  seen[src] = true;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const VertexId v = frontier[head];
    for (LinkId l : topo_.out_links(v)) {
      const VertexId next = topo_.link(l).to;
      if (!seen[next]) {
        seen[next] = true;
        parent[next] = l;
        frontier.push_back(next);
      }
    }
  }
  return parent;
}

std::span<const LinkId> Network::tree_route(VertexId src, VertexId dst) {
  // LCA walk: climb the deeper side, then both, emitting up-links in
  // travel order from src and collecting the dst side for reversal (the
  // down direction of each hop is the parent->child link).
  path_scratch_.clear();
  down_scratch_.clear();
  VertexId a = src;
  VertexId b = dst;
  while (depth_[a] > depth_[b]) {
    path_scratch_.push_back(up_link_[a]);
    a = parent_[a];
  }
  while (depth_[b] > depth_[a]) {
    down_scratch_.push_back(down_link_[b]);
    b = parent_[b];
  }
  while (a != b) {
    path_scratch_.push_back(up_link_[a]);
    a = parent_[a];
    down_scratch_.push_back(down_link_[b]);
    b = parent_[b];
  }
  path_scratch_.insert(path_scratch_.end(), down_scratch_.rbegin(),
                       down_scratch_.rend());
  return path_scratch_;
}

std::span<const LinkId> Network::route(std::size_t src_ep,
                                       std::size_t dst_ep) {
  if (tree_routing_) {
    return tree_route(topo_.endpoint(src_ep), topo_.endpoint(dst_ep));
  }
  RouteRef& ref = routes_[src_ep * topo_.endpoint_count() + dst_ep];
  if (ref.len != kUnresolved) {
    return {path_arena_.data() + ref.offset, ref.len};
  }
  const VertexId src = topo_.endpoint(src_ep);
  const VertexId dst = topo_.endpoint(dst_ep);
  const auto offset = static_cast<std::uint32_t>(path_arena_.size());
  if (src != dst) {
    const auto& parent = parents_from(src);
    ECO_CHECK_MSG(parent[dst] != kNoParent, "destination unreachable");
    VertexId v = dst;
    while (v != src) {
      const LinkId l = parent[v];
      ECO_CHECK(l != kNoParent);
      path_arena_.push_back(l);
      v = topo_.link(l).from;
    }
    std::reverse(path_arena_.begin() + offset, path_arena_.end());
  }
  ref.offset = offset;
  ref.len = static_cast<std::uint32_t>(path_arena_.size() - offset);
  return {path_arena_.data() + ref.offset, ref.len};
}

TransferResult Network::send(std::size_t src, std::size_t dst,
                             const Packet& packet, SimTime ready) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  TransferResult result;
  ++packets_;
  if (src == dst) {
    result.arrival = ready;
    return result;
  }
  // One route lookup for the whole transfer (the old code re-resolved the
  // path a second time for the last-byte term).
  const std::span<const LinkId> path = route(src, dst);
  if (path.empty()) {  // distinct endpoints sharing a vertex
    result.arrival = ready;
    return result;
  }
  const Bytes wire = packet.wire_bytes();
  SimTime head = ready;
  for (LinkId l : path) {
    const TopoLink& link = topo_.link(l);
    const auto level = static_cast<std::size_t>(link.level);
    const LinkParams& p = level_params_[level];
    const SimDuration serialization = scale_duration(
        p.bandwidth.transfer_time(wire), level_factor_[level]);
    CalendarTimeline& tl =
        config_.shared_medium ? bus_timeline_ : link_timelines_[l];
    // Cut-through: the head must win the link, then pays hop latency;
    // the tail trails by the serialization time.
    const SimTime start = tl.reserve(head, serialization);
    head = start + p.hop_latency;
    ++result.hops;
    result.energy += p.pj_per_byte * static_cast<double>(wire);
    result.energy += p.pj_per_packet;
    byte_hops_ += wire;
    bytes_per_level_[static_cast<std::size_t>(link.level)] += wire;
  }
  // Last-byte arrival: head arrival plus one serialization tail on the
  // final (bottleneck-approximated) link.
  const auto last_level =
      static_cast<std::size_t>(topo_.link(path.back()).level);
  const LinkParams& last = level_params_[last_level];
  result.arrival = head + scale_duration(last.bandwidth.transfer_time(wire),
                                         level_factor_[last_level]);
  energy_.charge(packet_energy_ids_[static_cast<std::size_t>(packet.type)],
                 result.energy);
  // Cumulative send/hop counter tracks, thinned by the session's sampling
  // interval (the thread-wide gate interleaves the two tracks).
  ECO_TRACE_COUNTER(obs::Cat::kNet, net_trace_names().packets,
                    (obs::Lane{obs::kNetPid, 0}), result.arrival, packets_);
  ECO_TRACE_COUNTER(obs::Cat::kNet, net_trace_names().byte_hops,
                    (obs::Lane{obs::kNetPid, 1}), result.arrival, byte_hops_);
  return result;
}

int Network::hop_count(std::size_t src, std::size_t dst) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  if (tree_routing_) {
    // depth(src) + depth(dst) - 2 depth(LCA), without materializing the
    // path (pure, so concurrent shard threads may call it).
    VertexId a = topo_.endpoint(src);
    VertexId b = topo_.endpoint(dst);
    int hops = 0;
    while (depth_[a] > depth_[b]) {
      a = parent_[a];
      ++hops;
    }
    while (depth_[b] > depth_[a]) {
      b = parent_[b];
      ++hops;
    }
    while (a != b) {
      a = parent_[a];
      b = parent_[b];
      hops += 2;
    }
    return hops;
  }
  return static_cast<int>(route(src, dst).size());
}

SimDuration Network::route_latency(std::size_t src, std::size_t dst) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  if (tree_routing_) {
    // Mutation-free LCA walk over per-level hop latencies — the latency
    // oracle the sharded runtime queries from concurrent shard threads.
    VertexId a = topo_.endpoint(src);
    VertexId b = topo_.endpoint(dst);
    SimDuration latency = 0;
    while (depth_[a] > depth_[b]) {
      latency += up_hop_latency(a);
      a = parent_[a];
    }
    while (depth_[b] > depth_[a]) {
      latency += up_hop_latency(b);
      b = parent_[b];
    }
    while (a != b) {
      latency += up_hop_latency(a) + up_hop_latency(b);
      a = parent_[a];
      b = parent_[b];
    }
    return latency;
  }
  SimDuration latency = 0;
  for (const LinkId l : route(src, dst)) {
    latency += params_for_level(topo_.link(l).level).hop_latency;
  }
  return latency;
}

SimDuration Network::min_cross_latency(int min_level) {
  const auto memo = min_cross_cache_.find(min_level);
  if (memo != min_cross_cache_.end()) return memo->second;
  SimDuration best = 0;
  if (tree_routing_) {
    // Analytic tree DP instead of the O(E^2·path) pairwise sweep. Removing
    // a tree link splits the endpoints in two; the cheapest route crossing
    // that link is (nearest endpoint below it) + hop + (nearest endpoint
    // above it). Minimize over links of level >= min_level.
    //
    // Pass 1 (leaves up): down_min[v] = min latency from v to an endpoint
    // in its subtree, folding each child into its parent while tracking
    // the parent's best and second-best child contributions (the top-2
    // trick gives "min over siblings except me" in O(1)).
    const std::size_t verts = topo_.vertex_count();
    std::vector<bool> is_ep(verts, false);
    for (std::size_t e = 0; e < topo_.endpoint_count(); ++e) {
      is_ep[topo_.endpoint(e)] = true;
    }
    std::vector<SimDuration> down_min(verts), best1(verts, kInfLatency),
        best2(verts, kInfLatency), up_out(verts);
    for (std::size_t v = 0; v < verts; ++v) {
      down_min[v] = is_ep[v] ? 0 : kInfLatency;
    }
    for (std::size_t i = verts; i-- > 1;) {  // children before parents
      const VertexId v = bfs_order_[i];
      const VertexId p = parent_[v];
      const SimDuration c = sat_add(down_min[v], up_hop_latency(v));
      if (c < best1[p]) {
        best2[p] = best1[p];
        best1[p] = c;
      } else if (c < best2[p]) {
        best2[p] = c;
      }
      down_min[p] = std::min(down_min[p], c);
    }
    // Pass 2 (root down): up_out[v] = min latency from v to an endpoint
    // NOT in its subtree (the hop to the parent included).
    up_out[bfs_order_[0]] = kInfLatency;
    for (std::size_t i = 1; i < verts; ++i) {
      const VertexId v = bfs_order_[i];
      const VertexId p = parent_[v];
      const SimDuration mine = sat_add(down_min[v], up_hop_latency(v));
      const SimDuration sibling = mine == best1[p] ? best2[p] : best1[p];
      SimDuration others = std::min(sibling, up_out[p]);
      if (is_ep[p]) others = 0;
      up_out[v] = sat_add(others, up_hop_latency(v));
    }
    SimDuration lowest = kInfLatency;
    for (std::size_t i = 1; i < verts; ++i) {
      const VertexId v = bfs_order_[i];
      if (topo_.link(up_link_[v]).level < min_level) continue;
      lowest = std::min(lowest, sat_add(down_min[v], up_out[v]));
    }
    best = lowest == kInfLatency ? 0 : lowest;
  } else {
    const std::size_t eps = topo_.endpoint_count();
    for (std::size_t src = 0; src < eps; ++src) {
      for (std::size_t dst = 0; dst < eps; ++dst) {
        if (src == dst) continue;
        bool crosses = false;
        SimDuration latency = 0;
        for (const LinkId l : route(src, dst)) {
          const TopoLink& link = topo_.link(l);
          if (link.level >= min_level) crosses = true;
          latency += params_for_level(link.level).hop_latency;
        }
        if (crosses && (best == 0 || latency < best)) best = latency;
      }
    }
  }
  min_cross_cache_.emplace(min_level, best);
  return best;
}

SimDuration Network::min_latency_from(std::size_t src, int min_level) {
  ECO_CHECK(src < topo_.endpoint_count());
  if (!tree_routing_) {
    // Dense fallback: sweep destinations with the same crossing oracle as
    // the pairwise min_cross_latency() path.
    SimDuration best = 0;
    const std::size_t eps = topo_.endpoint_count();
    for (std::size_t dst = 0; dst < eps; ++dst) {
      if (dst == src) continue;
      bool crosses = false;
      SimDuration latency = 0;
      for (const LinkId l : route(src, dst)) {
        const TopoLink& link = topo_.link(l);
        if (link.level >= min_level) crosses = true;
        latency += params_for_level(link.level).hop_latency;
      }
      if (crosses && (best == 0 || latency < best)) best = latency;
    }
    return best;
  }
  auto fold_top2 = [](SimDuration c, SimDuration& b1, SimDuration& b2) {
    if (c < b1) {
      b2 = b1;
      b1 = c;
    } else if (c < b2) {
      b2 = c;  // equal ties land here, so "except me" still sees the twin
    }
  };
  auto it = source_dp_cache_.find(min_level);
  if (it == source_dp_cache_.end()) {
    const std::size_t verts = topo_.vertex_count();
    SourceDp dp;
    dp.is_ep.assign(verts, false);
    for (std::size_t e = 0; e < topo_.endpoint_count(); ++e) {
      dp.is_ep[topo_.endpoint(e)] = true;
    }
    dp.down_min.assign(verts, kInfLatency);
    dp.down_cross.assign(verts, kInfLatency);
    dp.best1.assign(verts, kInfLatency);
    dp.best2.assign(verts, kInfLatency);
    dp.best1x.assign(verts, kInfLatency);
    dp.best2x.assign(verts, kInfLatency);
    for (std::size_t v = 0; v < verts; ++v) {
      if (dp.is_ep[v]) dp.down_min[v] = 0;
    }
    for (std::size_t i = verts; i-- > 1;) {  // children before parents
      const VertexId v = bfs_order_[i];
      const VertexId p = parent_[v];
      const SimDuration hop = up_hop_latency(v);
      const bool qualifies = topo_.link(up_link_[v]).level >= min_level;
      const SimDuration c = sat_add(dp.down_min[v], hop);
      // Crossing inside the branch: either deeper down, or on the child's
      // own attachment link when that link qualifies.
      const SimDuration cx = sat_add(
          std::min(qualifies ? dp.down_min[v] : kInfLatency,
                   dp.down_cross[v]),
          hop);
      fold_top2(c, dp.best1[p], dp.best2[p]);
      fold_top2(cx, dp.best1x[p], dp.best2x[p]);
      dp.down_min[p] = std::min(dp.down_min[p], c);
      dp.down_cross[p] = std::min(dp.down_cross[p], cx);
    }
    it = source_dp_cache_.emplace(min_level, std::move(dp)).first;
  }
  const SourceDp& dp = it->second;
  // Climb from the source leaf. At each ancestor p the climb stands `c`
  // away from src, `crossed` recording whether it has used a qualifying
  // link yet; p itself (if an endpoint) or its other children complete the
  // route. A sibling branch is eligible unconditionally when the route
  // must still cross inside it (sibx), or as soon as the climb crossed.
  SimDuration best = kInfLatency;
  SimDuration c = 0;
  bool crossed = false;
  VertexId v = topo_.endpoint(src);
  const VertexId root = bfs_order_[0];
  // The rooted tree is anchored at vertex 0, which may itself be an
  // endpoint — a source can have *descendants*, not just ancestors. A
  // route that never climbs qualifies only by crossing inside the subtree,
  // which is exactly down_cross of the source vertex.
  best = std::min(best, dp.down_cross[v]);
  while (v != root) {
    const VertexId p = parent_[v];
    const SimDuration hop = up_hop_latency(v);
    const bool qualifies = topo_.link(up_link_[v]).level >= min_level;
    const SimDuration c2 = sat_add(c, hop);
    const bool crossed2 = crossed || qualifies;
    if (crossed2 && dp.is_ep[p]) best = std::min(best, c2);
    const SimDuration mine = sat_add(dp.down_min[v], hop);
    const SimDuration minex = sat_add(
        std::min(qualifies ? dp.down_min[v] : kInfLatency, dp.down_cross[v]),
        hop);
    const SimDuration sib = mine == dp.best1[p] ? dp.best2[p] : dp.best1[p];
    const SimDuration sibx =
        minex == dp.best1x[p] ? dp.best2x[p] : dp.best1x[p];
    if (crossed2) best = std::min(best, sat_add(c2, sib));
    best = std::min(best, sat_add(c2, sibx));
    c = c2;
    crossed = crossed2;
    v = p;
  }
  return best == kInfLatency ? 0 : best;
}

int Network::diameter() {
  if (tree_routing_) {
    // Deepest-LCA endpoint pair by tree DP: at every vertex combine the
    // two longest endpoint-reaching branches below it (the vertex itself
    // counts as a zero-length branch if it is an endpoint). O(V), against
    // one BFS per source (O(E·V)) for the dense path.
    constexpr int kNone = -1;
    const std::size_t verts = topo_.vertex_count();
    std::vector<int> down(verts, kNone), top1(verts, kNone),
        top2(verts, kNone);
    for (std::size_t e = 0; e < topo_.endpoint_count(); ++e) {
      const VertexId v = topo_.endpoint(e);
      down[v] = 0;
      top1[v] = 0;  // the vertex itself as a branch of length 0
    }
    int best = 0;
    for (std::size_t i = verts; i-- > 0;) {
      const VertexId v = bfs_order_[i];
      if (top1[v] != kNone && top2[v] != kNone) {
        best = std::max(best, top1[v] + top2[v]);
      }
      if (i == 0 || down[v] == kNone) continue;
      const VertexId p = parent_[v];
      const int c = down[v] + 1;
      if (c > top1[p]) {
        top2[p] = top1[p];
        top1[p] = c;
      } else if (c > top2[p]) {
        top2[p] = c;
      }
      down[p] = std::max(down[p], c);
    }
    return best;
  }
  // One BFS per source endpoint with a hop-distance array: O(V + L) per
  // source instead of re-walking the parent chain for every destination
  // pair (which was quadratic in path length per pair).
  int best = 0;
  std::vector<int> dist(topo_.vertex_count());
  std::vector<VertexId> frontier;
  frontier.reserve(topo_.vertex_count());
  for (std::size_t s = 0; s < topo_.endpoint_count(); ++s) {
    const VertexId sv = topo_.endpoint(s);
    dist.assign(topo_.vertex_count(), -1);
    frontier.clear();
    frontier.push_back(sv);
    dist[sv] = 0;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const VertexId v = frontier[head];
      for (LinkId l : topo_.out_links(v)) {
        const VertexId next = topo_.link(l).to;
        if (dist[next] < 0) {
          dist[next] = dist[v] + 1;
          frontier.push_back(next);
        }
      }
    }
    for (std::size_t d = 0; d < topo_.endpoint_count(); ++d) {
      if (s == d) continue;
      const int hops = dist[topo_.endpoint(d)];
      ECO_CHECK_MSG(hops >= 0, "destination unreachable");
      best = std::max(best, hops);
    }
  }
  return best;
}

std::size_t Network::route_state_bytes() const {
  std::size_t bytes = 0;
  bytes += parent_.size() * sizeof(std::uint32_t);
  bytes += up_link_.size() * sizeof(LinkId);
  bytes += down_link_.size() * sizeof(LinkId);
  bytes += depth_.size() * sizeof(std::uint32_t);
  bytes += bfs_order_.size() * sizeof(VertexId);
  bytes += routes_.size() * sizeof(RouteRef);
  bytes += path_arena_.size() * sizeof(LinkId);
  for (const auto& p : parent_cache_) {
    bytes += p.size() * sizeof(std::uint32_t);
  }
  return bytes;
}

void Network::set_level_degradation(int level, double factor) {
  ECO_CHECK_MSG(factor >= 1.0, "degradation factor must be >= 1.0");
  const auto l = static_cast<std::size_t>(level);
  ECO_CHECK_MSG(level >= 0 && l < level_factor_.size(),
                "unknown link level for degradation");
  level_factor_[l] = factor;
}

std::map<int, std::uint64_t> Network::bytes_per_level() const {
  std::map<int, std::uint64_t> out;
  for (std::size_t l = 0; l < bytes_per_level_.size(); ++l) {
    if (bytes_per_level_[l] != 0) out.emplace(static_cast<int>(l),
                                              bytes_per_level_[l]);
  }
  return out;
}

SimTime Network::max_link_busy() const {
  if (config_.shared_medium) return bus_timeline_.busy_time();
  SimTime best = 0;
  for (const auto& tl : link_timelines_) best = std::max(best, tl.busy_time());
  return best;
}

void Network::release(SimTime watermark) {
  bus_timeline_.release(watermark);
  for (auto& tl : link_timelines_) tl.release(watermark);
}

std::size_t Network::peak_live_intervals() const {
  std::size_t best = bus_timeline_.peak_live_intervals();
  for (const auto& tl : link_timelines_) {
    best = std::max(best, tl.peak_live_intervals());
  }
  return best;
}

double Network::max_link_utilization(SimTime horizon) const {
  if (horizon == 0) return 0.0;
  if (config_.shared_medium) return bus_timeline_.utilization(horizon);
  double best = 0.0;
  for (const auto& tl : link_timelines_) {
    best = std::max(best, tl.utilization(horizon));
  }
  return best;
}

}  // namespace ecoscale
