#include "interconnect/network.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/check.h"
#include "obs/trace.h"

namespace ecoscale {

namespace {
constexpr std::uint32_t kNoParent = std::numeric_limits<std::uint32_t>::max();

/// Counter-track names for the interconnect, interned once per process.
struct NetTraceNames {
  CounterId packets = CounterRegistry::intern("net.packets");
  CounterId byte_hops = CounterRegistry::intern("net.byte_hops");
};
[[maybe_unused]] const NetTraceNames& net_trace_names() {
  static const NetTraceNames names;
  return names;
}

/// Stretch a duration by a degradation factor (>= 1.0, rounded to ps).
SimDuration scale_duration(SimDuration d, double factor) {
  if (factor == 1.0) return d;
  return static_cast<SimDuration>(static_cast<double>(d) * factor + 0.5);
}
}  // namespace

Network::Network(Topology topology, NetworkConfig config)
    : topo_(std::move(topology)),
      config_(std::move(config)),
      bus_timeline_("bus") {
  ECO_CHECK_MSG(config_.level_params.contains(0),
                "NetworkConfig must define level-0 link parameters");
  link_timelines_.resize(topo_.link_count());

  // Dense per-level parameter and traffic tables: links carry small level
  // tags, so an indexed array replaces the per-hop map find.
  int max_level = 0;
  for (LinkId l = 0; l < topo_.link_count(); ++l) {
    max_level = std::max(max_level, topo_.link(l).level);
  }
  for (const auto& [level, params] : config_.level_params) {
    if (level > max_level) max_level = level;
  }
  level_params_.assign(static_cast<std::size_t>(max_level) + 1,
                       config_.level_params.at(0));
  for (const auto& [level, params] : config_.level_params) {
    if (level >= 0) level_params_[static_cast<std::size_t>(level)] = params;
  }
  bytes_per_level_.assign(level_params_.size(), 0);
  level_factor_.assign(level_params_.size(), 1.0);

  // Pre-intern the per-packet-type energy categories so send() never
  // builds a "net." + name string on the hot path.
  for (std::size_t t = 0; t < kPacketTypeCount; ++t) {
    packet_energy_ids_[t] = CounterRegistry::intern(
        std::string("net.") +
        packet_type_name(static_cast<PacketType>(t)));
  }

  routes_.assign(topo_.endpoint_count() * topo_.endpoint_count(),
                 RouteRef{});
  parent_cache_.resize(topo_.vertex_count());
}

const std::vector<std::uint32_t>& Network::parents_from(VertexId src) {
  std::vector<std::uint32_t>& parent = parent_cache_[src];
  if (!parent.empty()) return parent;
  // BFS over vertices; parent[v] = link id used to reach v (deterministic:
  // links are visited in insertion order).
  parent.assign(topo_.vertex_count(), kNoParent);
  std::vector<VertexId> frontier{src};
  std::vector<bool> seen(topo_.vertex_count(), false);
  seen[src] = true;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const VertexId v = frontier[head];
    for (LinkId l : topo_.out_links(v)) {
      const VertexId next = topo_.link(l).to;
      if (!seen[next]) {
        seen[next] = true;
        parent[next] = l;
        frontier.push_back(next);
      }
    }
  }
  return parent;
}

std::span<const LinkId> Network::route(std::size_t src_ep,
                                       std::size_t dst_ep) {
  RouteRef& ref = routes_[src_ep * topo_.endpoint_count() + dst_ep];
  if (ref.len != kUnresolved) {
    return {path_arena_.data() + ref.offset, ref.len};
  }
  const VertexId src = topo_.endpoint(src_ep);
  const VertexId dst = topo_.endpoint(dst_ep);
  const auto offset = static_cast<std::uint32_t>(path_arena_.size());
  if (src != dst) {
    const auto& parent = parents_from(src);
    ECO_CHECK_MSG(parent[dst] != kNoParent, "destination unreachable");
    VertexId v = dst;
    while (v != src) {
      const LinkId l = parent[v];
      ECO_CHECK(l != kNoParent);
      path_arena_.push_back(l);
      v = topo_.link(l).from;
    }
    std::reverse(path_arena_.begin() + offset, path_arena_.end());
  }
  ref.offset = offset;
  ref.len = static_cast<std::uint32_t>(path_arena_.size() - offset);
  return {path_arena_.data() + ref.offset, ref.len};
}

TransferResult Network::send(std::size_t src, std::size_t dst,
                             const Packet& packet, SimTime ready) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  TransferResult result;
  ++packets_;
  if (src == dst) {
    result.arrival = ready;
    return result;
  }
  // One route lookup for the whole transfer (the old code re-resolved the
  // path a second time for the last-byte term).
  const std::span<const LinkId> path = route(src, dst);
  if (path.empty()) {  // distinct endpoints sharing a vertex
    result.arrival = ready;
    return result;
  }
  const Bytes wire = packet.wire_bytes();
  SimTime head = ready;
  for (LinkId l : path) {
    const TopoLink& link = topo_.link(l);
    const auto level = static_cast<std::size_t>(link.level);
    const LinkParams& p = level_params_[level];
    const SimDuration serialization = scale_duration(
        p.bandwidth.transfer_time(wire), level_factor_[level]);
    CalendarTimeline& tl =
        config_.shared_medium ? bus_timeline_ : link_timelines_[l];
    // Cut-through: the head must win the link, then pays hop latency;
    // the tail trails by the serialization time.
    const SimTime start = tl.reserve(head, serialization);
    head = start + p.hop_latency;
    ++result.hops;
    result.energy += p.pj_per_byte * static_cast<double>(wire);
    result.energy += p.pj_per_packet;
    byte_hops_ += wire;
    bytes_per_level_[static_cast<std::size_t>(link.level)] += wire;
  }
  // Last-byte arrival: head arrival plus one serialization tail on the
  // final (bottleneck-approximated) link.
  const auto last_level =
      static_cast<std::size_t>(topo_.link(path.back()).level);
  const LinkParams& last = level_params_[last_level];
  result.arrival = head + scale_duration(last.bandwidth.transfer_time(wire),
                                         level_factor_[last_level]);
  energy_.charge(packet_energy_ids_[static_cast<std::size_t>(packet.type)],
                 result.energy);
  // Cumulative send/hop counter tracks, thinned by the session's sampling
  // interval (the thread-wide gate interleaves the two tracks).
  ECO_TRACE_COUNTER(obs::Cat::kNet, net_trace_names().packets,
                    (obs::Lane{obs::kNetPid, 0}), result.arrival, packets_);
  ECO_TRACE_COUNTER(obs::Cat::kNet, net_trace_names().byte_hops,
                    (obs::Lane{obs::kNetPid, 1}), result.arrival, byte_hops_);
  return result;
}

int Network::hop_count(std::size_t src, std::size_t dst) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  return static_cast<int>(route(src, dst).size());
}

SimDuration Network::route_latency(std::size_t src, std::size_t dst) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  SimDuration latency = 0;
  for (const LinkId l : route(src, dst)) {
    latency += params_for_level(topo_.link(l).level).hop_latency;
  }
  return latency;
}

SimDuration Network::min_cross_latency(int min_level) {
  const auto memo = min_cross_cache_.find(min_level);
  if (memo != min_cross_cache_.end()) return memo->second;
  const std::size_t eps = topo_.endpoint_count();
  SimDuration best = 0;
  for (std::size_t src = 0; src < eps; ++src) {
    for (std::size_t dst = 0; dst < eps; ++dst) {
      if (src == dst) continue;
      bool crosses = false;
      SimDuration latency = 0;
      for (const LinkId l : route(src, dst)) {
        const TopoLink& link = topo_.link(l);
        if (link.level >= min_level) crosses = true;
        latency += params_for_level(link.level).hop_latency;
      }
      if (crosses && (best == 0 || latency < best)) best = latency;
    }
  }
  min_cross_cache_.emplace(min_level, best);
  return best;
}

int Network::diameter() {
  // One BFS per source endpoint with a hop-distance array: O(V + L) per
  // source instead of re-walking the parent chain for every destination
  // pair (which was quadratic in path length per pair).
  int best = 0;
  std::vector<int> dist(topo_.vertex_count());
  std::vector<VertexId> frontier;
  frontier.reserve(topo_.vertex_count());
  for (std::size_t s = 0; s < topo_.endpoint_count(); ++s) {
    const VertexId sv = topo_.endpoint(s);
    dist.assign(topo_.vertex_count(), -1);
    frontier.clear();
    frontier.push_back(sv);
    dist[sv] = 0;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const VertexId v = frontier[head];
      for (LinkId l : topo_.out_links(v)) {
        const VertexId next = topo_.link(l).to;
        if (dist[next] < 0) {
          dist[next] = dist[v] + 1;
          frontier.push_back(next);
        }
      }
    }
    for (std::size_t d = 0; d < topo_.endpoint_count(); ++d) {
      if (s == d) continue;
      const int hops = dist[topo_.endpoint(d)];
      ECO_CHECK_MSG(hops >= 0, "destination unreachable");
      best = std::max(best, hops);
    }
  }
  return best;
}

void Network::set_level_degradation(int level, double factor) {
  ECO_CHECK_MSG(factor >= 1.0, "degradation factor must be >= 1.0");
  const auto l = static_cast<std::size_t>(level);
  ECO_CHECK_MSG(level >= 0 && l < level_factor_.size(),
                "unknown link level for degradation");
  level_factor_[l] = factor;
}

std::map<int, std::uint64_t> Network::bytes_per_level() const {
  std::map<int, std::uint64_t> out;
  for (std::size_t l = 0; l < bytes_per_level_.size(); ++l) {
    if (bytes_per_level_[l] != 0) out.emplace(static_cast<int>(l),
                                              bytes_per_level_[l]);
  }
  return out;
}

SimTime Network::max_link_busy() const {
  if (config_.shared_medium) return bus_timeline_.busy_time();
  SimTime best = 0;
  for (const auto& tl : link_timelines_) best = std::max(best, tl.busy_time());
  return best;
}

void Network::release(SimTime watermark) {
  bus_timeline_.release(watermark);
  for (auto& tl : link_timelines_) tl.release(watermark);
}

std::size_t Network::peak_live_intervals() const {
  std::size_t best = bus_timeline_.peak_live_intervals();
  for (const auto& tl : link_timelines_) {
    best = std::max(best, tl.peak_live_intervals());
  }
  return best;
}

double Network::max_link_utilization(SimTime horizon) const {
  if (horizon == 0) return 0.0;
  if (config_.shared_medium) return bus_timeline_.utilization(horizon);
  double best = 0.0;
  for (const auto& tl : link_timelines_) {
    best = std::max(best, tl.utilization(horizon));
  }
  return best;
}

}  // namespace ecoscale
