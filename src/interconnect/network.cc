#include "interconnect/network.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/check.h"

namespace ecoscale {

namespace {
constexpr std::uint32_t kNoParent = std::numeric_limits<std::uint32_t>::max();
}  // namespace

Network::Network(Topology topology, NetworkConfig config)
    : topo_(std::move(topology)),
      config_(std::move(config)),
      bus_timeline_("bus") {
  ECO_CHECK_MSG(config_.level_params.contains(0),
                "NetworkConfig must define level-0 link parameters");
  link_timelines_.resize(topo_.link_count());
}

const LinkParams& Network::params_for_level(int level) const {
  auto it = config_.level_params.find(level);
  if (it == config_.level_params.end()) it = config_.level_params.find(0);
  return it->second;
}

const std::vector<std::uint32_t>& Network::parents_from(VertexId src) {
  auto it = parent_cache_.find(src);
  if (it != parent_cache_.end()) return it->second;
  // BFS over vertices; parent[v] = link id used to reach v (deterministic:
  // links are visited in insertion order).
  std::vector<std::uint32_t> parent(topo_.vertex_count(), kNoParent);
  std::deque<VertexId> frontier{src};
  std::vector<bool> seen(topo_.vertex_count(), false);
  seen[src] = true;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (LinkId l : topo_.out_links(v)) {
      const VertexId next = topo_.link(l).to;
      if (!seen[next]) {
        seen[next] = true;
        parent[next] = l;
        frontier.push_back(next);
      }
    }
  }
  return parent_cache_.emplace(src, std::move(parent)).first->second;
}

const std::vector<LinkId>& Network::route(VertexId src, VertexId dst) {
  const auto key = std::make_pair(src, dst);
  auto it = path_cache_.find(key);
  if (it != path_cache_.end()) return it->second;
  std::vector<LinkId> path;
  if (src != dst) {
    const auto& parent = parents_from(src);
    ECO_CHECK_MSG(parent[dst] != kNoParent || dst == src,
                  "destination unreachable");
    VertexId v = dst;
    while (v != src) {
      const LinkId l = parent[v];
      ECO_CHECK(l != kNoParent);
      path.push_back(l);
      v = topo_.link(l).from;
    }
    std::reverse(path.begin(), path.end());
  }
  return path_cache_.emplace(key, std::move(path)).first->second;
}

TransferResult Network::send(std::size_t src, std::size_t dst,
                             const Packet& packet, SimTime ready) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  const VertexId sv = topo_.endpoint(src);
  const VertexId dv = topo_.endpoint(dst);
  TransferResult result;
  ++packets_;
  if (sv == dv) {
    result.arrival = ready;
    return result;
  }
  const Bytes wire = packet.wire_bytes();
  SimTime head = ready;
  for (LinkId l : route(sv, dv)) {
    const TopoLink& link = topo_.link(l);
    const LinkParams& p = params_for_level(link.level);
    const SimDuration serialization = p.bandwidth.transfer_time(wire);
    CalendarTimeline& tl =
        config_.shared_medium ? bus_timeline_ : link_timelines_[l];
    // Cut-through: the head must win the link, then pays hop latency;
    // the tail trails by the serialization time.
    const SimTime start = tl.reserve(head, serialization);
    head = start + p.hop_latency;
    ++result.hops;
    result.energy += p.pj_per_byte * static_cast<double>(wire);
    result.energy += p.pj_per_packet;
    byte_hops_ += wire;
    bytes_per_level_[link.level] += wire;
  }
  // Last-byte arrival: head arrival plus one serialization tail on the
  // final (bottleneck-approximated) link.
  const auto& path = route(sv, dv);
  const LinkParams& last = params_for_level(topo_.link(path.back()).level);
  result.arrival = head + last.bandwidth.transfer_time(wire);
  energy_.charge(std::string("net.") + packet_type_name(packet.type),
                 result.energy);
  return result;
}

int Network::hop_count(std::size_t src, std::size_t dst) {
  ECO_CHECK(src < topo_.endpoint_count() && dst < topo_.endpoint_count());
  return static_cast<int>(
      route(topo_.endpoint(src), topo_.endpoint(dst)).size());
}

int Network::diameter() {
  int best = 0;
  for (std::size_t s = 0; s < topo_.endpoint_count(); ++s) {
    // One BFS per endpoint; reuse the parent cache.
    const auto& parent = parents_from(topo_.endpoint(s));
    for (std::size_t d = 0; d < topo_.endpoint_count(); ++d) {
      if (s == d) continue;
      // Count hops by walking the parent chain.
      int hops = 0;
      VertexId v = topo_.endpoint(d);
      const VertexId sv = topo_.endpoint(s);
      while (v != sv) {
        const std::uint32_t l = parent[v];
        ECO_CHECK(l != kNoParent);
        v = topo_.link(l).from;
        ++hops;
      }
      best = std::max(best, hops);
    }
  }
  return best;
}

SimTime Network::max_link_busy() const {
  if (config_.shared_medium) return bus_timeline_.busy_time();
  SimTime best = 0;
  for (const auto& tl : link_timelines_) best = std::max(best, tl.busy_time());
  return best;
}

void Network::release(SimTime watermark) {
  bus_timeline_.release(watermark);
  for (auto& tl : link_timelines_) tl.release(watermark);
}

std::size_t Network::peak_live_intervals() const {
  std::size_t best = bus_timeline_.peak_live_intervals();
  for (const auto& tl : link_timelines_) {
    best = std::max(best, tl.peak_live_intervals());
  }
  return best;
}

double Network::max_link_utilization(SimTime horizon) const {
  if (horizon == 0) return 0.0;
  if (config_.shared_medium) return bus_timeline_.utilization(horizon);
  double best = 0.0;
  for (const auto& tl : link_timelines_) {
    best = std::max(best, tl.utilization(horizon));
  }
  return best;
}

}  // namespace ecoscale
