// Packet vocabulary of the multi-layer interconnect.
//
// The UNIMEM interconnect carries plain loads/stores, DMA bursts,
// interrupts and synchronisation messages between the Workers of a Compute
// Node (paper §4.1), plus configuration traffic for the reconfigurable
// blocks and MPI-style messages between Compute Nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "address/address.h"
#include "common/units.h"

namespace ecoscale {

enum class PacketType : std::uint8_t {
  kRead,        // load request (header only)
  kReadResp,    // load data response
  kWrite,       // store request with data
  kWriteAck,    // store acknowledgement
  kDma,         // bulk DMA burst
  kInterrupt,   // inter-worker interrupt / mailbox doorbell
  kSync,        // synchronisation (barrier token, atomic)
  kConfig,      // partial-reconfiguration bitstream traffic
  kCoherence,   // snoop / invalidate (baseline global-coherence runs only)
  kMessage,     // MPI-level message between Compute Nodes
};

/// Number of PacketType values (dense per-type tables index by the enum).
inline constexpr std::size_t kPacketTypeCount =
    static_cast<std::size_t>(PacketType::kMessage) + 1;

const char* packet_type_name(PacketType t);

/// Fixed header overhead added to every packet's payload.
inline constexpr Bytes kHeaderBytes = 16;

struct Packet {
  PacketType type = PacketType::kRead;
  WorkerCoord src;
  WorkerCoord dst;
  Bytes payload = 0;

  Bytes wire_bytes() const { return payload + kHeaderBytes; }
};

inline const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kRead: return "read";
    case PacketType::kReadResp: return "read_resp";
    case PacketType::kWrite: return "write";
    case PacketType::kWriteAck: return "write_ack";
    case PacketType::kDma: return "dma";
    case PacketType::kInterrupt: return "interrupt";
    case PacketType::kSync: return "sync";
    case PacketType::kConfig: return "config";
    case PacketType::kCoherence: return "coherence";
    case PacketType::kMessage: return "message";
  }
  return "?";
}

}  // namespace ecoscale
