#include "interconnect/topology.h"

namespace ecoscale {

Topology make_tree(const std::vector<std::size_t>& radices) {
  ECO_CHECK_MSG(!radices.empty(), "tree needs at least one level");
  Topology t;
  // Build bottom-up: endpoints first, then switch levels.
  std::size_t endpoints = 1;
  for (std::size_t r : radices) {
    ECO_CHECK(r >= 1);
    endpoints *= r;
  }
  std::vector<VertexId> current;
  current.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    current.push_back(t.add_vertex(/*is_endpoint=*/true));
  }
  for (std::size_t level = 0; level < radices.size(); ++level) {
    const std::size_t radix = radices[level];
    ECO_CHECK(current.size() % radix == 0);
    std::vector<VertexId> parents;
    parents.reserve(current.size() / radix);
    for (std::size_t i = 0; i < current.size(); i += radix) {
      const VertexId sw = t.add_vertex(/*is_endpoint=*/false);
      for (std::size_t j = 0; j < radix; ++j) {
        t.add_link(current[i + j], sw, static_cast<int>(level));
      }
      parents.push_back(sw);
    }
    current = std::move(parents);
  }
  ECO_CHECK(current.size() == 1);  // single root
  return t;
}

Topology make_crossbar(std::size_t endpoints) {
  ECO_CHECK(endpoints >= 1);
  Topology t;
  std::vector<VertexId> eps;
  eps.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    eps.push_back(t.add_vertex(true));
  }
  const VertexId hub = t.add_vertex(false);
  for (VertexId e : eps) t.add_link(e, hub, 0);
  return t;
}

Topology make_bus(std::size_t endpoints) {
  // Same shape as a crossbar; the Network layer distinguishes a bus by
  // mapping *all* its links onto one shared timeline (see NetworkConfig).
  return make_crossbar(endpoints);
}

Topology make_dragonfly(std::size_t groups, std::size_t routers,
                        std::size_t endpoints_per_router) {
  ECO_CHECK(groups >= 1 && routers >= 1 && endpoints_per_router >= 1);
  Topology t;
  // routers_by_group[g][r] = vertex of router r in group g.
  std::vector<std::vector<VertexId>> rbg(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    rbg[g].reserve(routers);
    for (std::size_t r = 0; r < routers; ++r) {
      // Endpoints first so endpoint indices are contiguous per router.
      std::vector<VertexId> eps;
      eps.reserve(endpoints_per_router);
      for (std::size_t e = 0; e < endpoints_per_router; ++e) {
        eps.push_back(t.add_vertex(true));
      }
      const VertexId router = t.add_vertex(false);
      for (VertexId e : eps) t.add_link(e, router, 0);
      rbg[g].push_back(router);
    }
    // Intra-group all-to-all (level 1).
    for (std::size_t a = 0; a < routers; ++a) {
      for (std::size_t b = a + 1; b < routers; ++b) {
        t.add_link(rbg[g][a], rbg[g][b], 1);
      }
    }
  }
  // One global (level 2) link between each pair of groups, round-robining
  // the attachment router so global links spread across routers.
  std::size_t attach = 0;
  for (std::size_t ga = 0; ga < groups; ++ga) {
    for (std::size_t gb = ga + 1; gb < groups; ++gb) {
      const VertexId ra = rbg[ga][attach % routers];
      const VertexId rb = rbg[gb][(attach + 1) % routers];
      t.add_link(ra, rb, 2);
      ++attach;
    }
  }
  return t;
}

Topology make_mesh2d(std::size_t cols, std::size_t rows) {
  ECO_CHECK(cols >= 1 && rows >= 1);
  Topology t;
  std::vector<VertexId> routers(cols * rows);
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < cols; ++x) {
      const VertexId ep = t.add_vertex(true);
      const VertexId router = t.add_vertex(false);
      t.add_link(ep, router, 0);
      routers[y * cols + x] = router;
    }
  }
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < cols; ++x) {
      if (x + 1 < cols) {
        t.add_link(routers[y * cols + x], routers[y * cols + x + 1], 1);
      }
      if (y + 1 < rows) {
        t.add_link(routers[y * cols + x], routers[(y + 1) * cols + x], 1);
      }
    }
  }
  return t;
}

}  // namespace ecoscale
